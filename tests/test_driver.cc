#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "driver/sim_runner.hh"
#include "isa/assembler.hh"

using namespace mssr;

TEST(Driver, ConvenienceConfigs)
{
    const SimConfig base = baselineConfig(123);
    EXPECT_EQ(base.reuseKind, ReuseKind::None);
    EXPECT_EQ(base.maxInsts, 123u);

    const SimConfig rgid = rgidConfig(2, 128);
    EXPECT_EQ(rgid.reuseKind, ReuseKind::Rgid);
    EXPECT_EQ(rgid.reuse.numStreams, 2u);
    EXPECT_EQ(rgid.reuse.squashLogEntriesPerStream, 128u);
    EXPECT_EQ(rgid.reuse.wpbEntriesPerStream, 32u); // entries / 4

    const SimConfig ri = regIntConfig(128, 2);
    EXPECT_EQ(ri.reuseKind, ReuseKind::RegInt);
    EXPECT_EQ(ri.regint.sets, 128u);
    EXPECT_EQ(ri.regint.ways, 2u);
}

TEST(Driver, ToStringNames)
{
    EXPECT_EQ(toString(ReuseKind::None), "none");
    EXPECT_EQ(toString(ReuseKind::Rgid), "rgid");
    EXPECT_EQ(toString(ReuseKind::RegInt), "regint");
    EXPECT_EQ(toString(BranchPredictorKind::TageScL), "tage-sc-l");
    EXPECT_EQ(toString(BranchPredictorKind::Gshare), "gshare");
    EXPECT_EQ(toString(BranchPredictorKind::Bimodal), "bimodal");
}

TEST(Driver, ResultHelpers)
{
    RunResult base, fast;
    base.cycles = 200;
    base.ipc = 1.0;
    fast.cycles = 100;
    fast.ipc = 2.0;
    EXPECT_DOUBLE_EQ(fast.speedupOver(base), 2.0);
    EXPECT_DOUBLE_EQ(fast.ipcImprovementOver(base), 1.0);

    // Degenerate inputs must poison the result visibly (NaN -> "n/a"),
    // not masquerade as a measured 0.0 speedup.
    RunResult zero;
    EXPECT_TRUE(std::isnan(zero.speedupOver(base)));
    EXPECT_TRUE(std::isnan(base.speedupOver(zero)));
    EXPECT_TRUE(std::isnan(fast.ipcImprovementOver(zero)));
    EXPECT_TRUE(std::isnan(zero.ipcImprovementOver(zero)));
}

TEST(Driver, InspectHookSeesFinishedCore)
{
    const isa::Program prog = isa::assembleProgram(R"(
        li t0, 5
        halt
    )");
    bool called = false;
    runSim(prog, baselineConfig(), nullptr, [&](const O3Cpu &cpu) {
        called = true;
        EXPECT_TRUE(cpu.halted());
        EXPECT_EQ(cpu.archReg(5), 5u);
    });
    EXPECT_TRUE(called);
}

TEST(Driver, PipelineTraceProducesEvents)
{
    const isa::Program prog = isa::assembleProgram(R"(
        li t0, 1
        addi t0, t0, 2
        halt
    )");
    Tracer tracer(1024);
    SimConfig cfg = baselineConfig();
    cfg.tracer = &tracer;
    runSim(prog, cfg);

    bool sawFetch = false, sawRename = false, sawCommit = false;
    for (std::size_t i = 0; i < tracer.size(); ++i) {
        const TraceEvent &e = tracer.event(i);
        sawFetch |= e.stage == TraceStage::Fetch;
        sawRename |= e.stage == TraceStage::Rename;
        sawCommit |= e.stage == TraceStage::Commit;
    }
    EXPECT_TRUE(sawFetch);
    EXPECT_TRUE(sawRename);
    EXPECT_TRUE(sawCommit);
    // Text rendering keeps the stage/seq/pc fields human-readable.
    std::ostringstream text;
    tracer.writeText(text);
    EXPECT_NE(text.str().find("fetch"), std::string::npos);
    EXPECT_NE(text.str().find("commit"), std::string::npos);
}

TEST(Driver, TraceShowsReuseAndSquash)
{
    // One hashed H2P branch loop: squashes and reuse appear in traces.
    const isa::Program prog = isa::assembleProgram(R"(
        li s0, 0
        li s1, 300
    loop:
        addi t0, s0, 999
        li t1, -0x61c8864680b583eb
        mul t0, t0, t1
        srli t1, t0, 31
        xor t0, t0, t1
        andi t1, t0, 1
        beqz t1, skip
        addi s2, s2, 1
    skip:
        addi s3, s3, 7
        xori s3, s3, 3
        addi s0, s0, 1
        blt s0, s1, loop
        halt
    )");
    Tracer tracer(1 << 16);
    SimConfig cfg = rgidConfig(4, 64);
    cfg.tracer = &tracer;
    const RunResult r = runSim(prog, cfg);

    bool sawSquash = false, sawReused = false, sawReuseTest = false;
    for (std::size_t i = 0; i < tracer.size(); ++i) {
        const TraceEvent &e = tracer.event(i);
        if (e.stage == TraceStage::Squash) {
            sawSquash = true;
            EXPECT_NE(e.squash, SquashReason::None);
        }
        sawReuseTest |= e.stage == TraceStage::ReuseTest;
        sawReused |= e.stage == TraceStage::Rename &&
                     (e.reuse == ReuseOutcome::Reused ||
                      e.reuse == ReuseOutcome::ReusedNeedVerify);
    }
    EXPECT_TRUE(sawSquash);
    if (r.stats.get("reuse.success") > 0) {
        EXPECT_TRUE(sawReuseTest);
        EXPECT_TRUE(sawReused);
    }
}
