/**
 * Direction-predictor behaviour tests: learnability of simple
 * patterns, speculative-history snapshot/restore, and the expected
 * capability ordering (TAGE handles history-correlated patterns that
 * bimodal cannot).
 */

#include <gtest/gtest.h>

#include <functional>

#include "bpu/bimodal.hh"
#include "bpu/gshare.hh"
#include "bpu/loop_predictor.hh"
#include "bpu/statistical_corrector.hh"
#include "bpu/tage.hh"
#include "bpu/tage_sc_l.hh"
#include "common/rng.hh"

using namespace mssr;

namespace
{

/**
 * Trains @p pred on @p pattern(i) for a branch at @p pc and returns
 * the accuracy over the last quarter of @p iters trials.
 */
double
accuracy(DirPredictor &pred, Addr pc, unsigned iters,
         const std::function<bool(unsigned)> &pattern)
{
    unsigned correct = 0, measured = 0;
    for (unsigned i = 0; i < iters; ++i) {
        const bool taken = pattern(i);
        const bool guess = pred.predict(pc);
        pred.specUpdate(pc, taken); // in-order: spec follows actual
        pred.commitUpdate(pc, taken);
        if (i >= iters - iters / 4) {
            ++measured;
            correct += guess == taken ? 1 : 0;
        }
    }
    return static_cast<double>(correct) / measured;
}

} // namespace

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor pred;
    EXPECT_GT(accuracy(pred, 0x1000, 400, [](unsigned) { return true; }),
              0.99);
    BimodalPredictor pred2;
    EXPECT_GT(accuracy(pred2, 0x1000, 400, [](unsigned) { return false; }),
              0.99);
}

TEST(Bimodal, CannotLearnAlternation)
{
    BimodalPredictor pred;
    const double acc =
        accuracy(pred, 0x2000, 1000, [](unsigned i) { return i % 2 == 0; });
    EXPECT_LT(acc, 0.7); // 2-bit counters thrash on T/N/T/N
}

TEST(Gshare, LearnsShortPattern)
{
    GsharePredictor pred;
    EXPECT_GT(accuracy(pred, 0x3000, 4000,
                       [](unsigned i) { return i % 3 == 0; }),
              0.95);
}

TEST(Tage, LearnsLongPeriodicPattern)
{
    TagePredictor pred;
    // Period-20 pattern: needs real history, defeats bimodal.
    EXPECT_GT(accuracy(pred, 0x4000, 20000,
                       [](unsigned i) { return (i % 20) < 7; }),
              0.95);
}

TEST(Tage, RandomIsUnpredictable)
{
    TagePredictor pred;
    Rng rng(3);
    std::vector<bool> outcomes;
    for (int i = 0; i < 8000; ++i)
        outcomes.push_back(rng.chance(0.5));
    const double acc = accuracy(pred, 0x5000, 8000,
                                [&](unsigned i) { return outcomes[i]; });
    EXPECT_LT(acc, 0.62); // near coin-flip on true randomness
}

TEST(Tage, SnapshotRestoreRoundTrip)
{
    TagePredictor pred;
    for (int i = 0; i < 50; ++i)
        pred.specUpdate(0x100, i % 3 == 0);
    const PredSnapshot snap = pred.snapshot();
    const bool before = pred.predict(0x100);
    // Pollute speculative history (wrong path), then restore.
    for (int i = 0; i < 30; ++i)
        pred.specUpdate(0x104, true);
    pred.restore(snap);
    EXPECT_EQ(pred.predict(0x100), before);
}

TEST(TageScL, LoopPredictorCapturesFixedTripLoops)
{
    // Trip count 37 defeats short-history predictors; the loop
    // predictor should nail the exit after warmup.
    TageScLPredictor pred;
    const double acc = accuracy(pred, 0x6000, 37 * 300, [](unsigned i) {
        return (i % 37) != 36; // taken 36x, exit once
    });
    EXPECT_GT(acc, 0.99);
}

TEST(LoopPredictor, LearnsTripCount)
{
    LoopPredictor loop(64, 3, /*min_trip*/ 0);
    const Addr pc = 0x7000;
    // Warm up several full loop executions with trip count 5.
    for (int rep = 0; rep < 6; ++rep) {
        for (int i = 0; i < 5; ++i) {
            const bool taken = i != 4;
            loop.specUpdate(pc, taken);
            loop.commitUpdate(pc, taken);
        }
    }
    // Now confident: predicts taken for 4 iterations then exit.
    for (int i = 0; i < 5; ++i) {
        const auto p = loop.predict(pc);
        ASSERT_TRUE(p.valid) << "iteration " << i;
        EXPECT_EQ(p.taken, i != 4) << "iteration " << i;
        loop.specUpdate(pc, i != 4);
        loop.commitUpdate(pc, i != 4);
    }
}

TEST(LoopPredictor, SquashResyncsSpeculativeState)
{
    LoopPredictor loop(64, 0, 0); // no thresholds: always valid
    const Addr pc = 0x8000;
    for (int rep = 0; rep < 4; ++rep)
        for (int i = 0; i < 4; ++i) {
            loop.specUpdate(pc, i != 3);
            loop.commitUpdate(pc, i != 3);
        }
    // Speculatively advance without commits, then squash.
    loop.specUpdate(pc, true);
    loop.specUpdate(pc, true);
    loop.squash();
    // After squash the speculative iteration equals the committed one,
    // so the prediction sequence restarts from the beginning.
    const auto p = loop.predict(pc);
    EXPECT_TRUE(p.valid);
    EXPECT_TRUE(p.taken);
}

TEST(StatisticalCorrector, LearnsDisagreement)
{
    StatisticalCorrector sc;
    GlobalHistory hist;
    const Addr pc = 0x9000;
    // TAGE always says taken; reality is always not-taken.
    for (int i = 0; i < 200; ++i)
        sc.train(pc, true, false, hist);
    EXPECT_TRUE(sc.shouldRevert(pc, true, true, hist));
    // Strong (non-weak) TAGE predictions are never reverted.
    EXPECT_FALSE(sc.shouldRevert(pc, true, false, hist));
}

TEST(GlobalHistory, FoldStability)
{
    GlobalHistory a, b;
    for (int i = 0; i < 100; ++i) {
        a.shift(i % 3 == 0);
        b.shift(i % 3 == 0);
    }
    EXPECT_EQ(a.fold(64, 10), b.fold(64, 10));
    a.shift(true);
    b.shift(false);
    EXPECT_NE(a.fold(4, 10), b.fold(4, 10));
}
