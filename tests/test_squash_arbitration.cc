/**
 * requestSquash arbitration: regression tests for the same-afterSeq
 * tie-break. The seed dropped any second squash request whose
 * afterSeq was >= the pending one, so two same-cycle requests with
 * the same squash point but different redirects kept whichever
 * arrived first -- an event-ordering artifact, not an architectural
 * decision. The arbiter must be deterministic: strictly older
 * afterSeq wins; at equal afterSeq the older cause wins; at equal
 * cause, reason priority (BranchMispredict > ReuseVerifyFail >
 * MemOrderViolation) picks the redirect.
 */

#include <gtest/gtest.h>

#include "core/o3cpu.hh"
#include "isa/assembler.hh"
#include "sim/memory.hh"

namespace mssr
{

/** White-box access to O3Cpu's private squash arbiter. */
struct O3CpuTestPeer
{
    static void
    requestSquash(O3Cpu &cpu, SeqNum after_seq, Addr redirect,
                  DynInstPtr cause, SquashReason reason)
    {
        cpu.requestSquash(after_seq, redirect, std::move(cause), reason);
    }

    struct Pending
    {
        bool valid;
        SeqNum afterSeq;
        Addr redirectPC;
        SeqNum causeSeq;
        SquashReason reason;
    };

    static Pending
    pending(const O3Cpu &cpu)
    {
        const auto &p = cpu.pendingSquash_;
        return {p.valid, p.afterSeq, p.redirectPC,
                p.cause ? p.cause->seq : 0, p.reason};
    }

    static void
    clearPending(O3Cpu &cpu)
    {
        cpu.pendingSquash_ = O3Cpu::PendingSquash{};
    }
};

} // namespace mssr

using namespace mssr;

namespace
{

class SquashArbitration : public ::testing::Test
{
  protected:
    SquashArbitration()
        : prog_(isa::assembleProgram("halt\n")),
          cpu_(baselineCfg(), prog_, mem_)
    {
    }

    static SimConfig
    baselineCfg()
    {
        SimConfig cfg;
        cfg.reuseKind = ReuseKind::None;
        return cfg;
    }

    static DynInstPtr
    inst(SeqNum seq, Addr pc)
    {
        auto d = std::make_shared<DynInst>();
        d->seq = seq;
        d->pc = pc;
        return d;
    }

    void
    request(SeqNum after, Addr redirect, SeqNum cause_seq, Addr cause_pc,
            SquashReason reason)
    {
        O3CpuTestPeer::requestSquash(cpu_, after, redirect,
                                     inst(cause_seq, cause_pc), reason);
    }

    Memory mem_;
    isa::Program prog_;
    O3Cpu cpu_;
};

} // namespace

TEST_F(SquashArbitration, StrictlyOlderAfterSeqWins)
{
    request(60, 0x1000, 61, 0x900, SquashReason::BranchMispredict);
    request(50, 0x2000, 51, 0x800, SquashReason::MemOrderViolation);
    auto p = O3CpuTestPeer::pending(cpu_);
    EXPECT_EQ(p.afterSeq, 50u);
    EXPECT_EQ(p.redirectPC, 0x2000u);

    // And a younger request never displaces an older pending one.
    request(55, 0x3000, 56, 0x700, SquashReason::BranchMispredict);
    p = O3CpuTestPeer::pending(cpu_);
    EXPECT_EQ(p.afterSeq, 50u);
    EXPECT_EQ(p.redirectPC, 0x2000u);
}

TEST_F(SquashArbitration, SameAfterSeqOlderCauseWins)
{
    // Seed bug: same afterSeq with a *different* redirect was dropped
    // regardless of which cause was older, so the final redirect
    // depended on pipeline event order. The older cause's redirect
    // must win -- re-fetching from it re-resolves the younger cause.
    request(50, 0x2000, 51, 0x900, SquashReason::MemOrderViolation);
    request(50, 0x3000, 50, 0x800, SquashReason::BranchMispredict);
    auto p = O3CpuTestPeer::pending(cpu_);
    EXPECT_TRUE(p.valid);
    EXPECT_EQ(p.afterSeq, 50u);
    EXPECT_EQ(p.causeSeq, 50u);
    EXPECT_EQ(p.redirectPC, 0x3000u);
    EXPECT_EQ(p.reason, SquashReason::BranchMispredict);

    // Arrival order must not matter: older cause first also sticks.
    O3CpuTestPeer::clearPending(cpu_);
    request(50, 0x3000, 50, 0x800, SquashReason::BranchMispredict);
    request(50, 0x2000, 51, 0x900, SquashReason::MemOrderViolation);
    p = O3CpuTestPeer::pending(cpu_);
    EXPECT_EQ(p.causeSeq, 50u);
    EXPECT_EQ(p.redirectPC, 0x3000u);
    EXPECT_EQ(p.reason, SquashReason::BranchMispredict);
}

TEST_F(SquashArbitration, SameCauseReasonPriorityBreaksTie)
{
    // A reused load that both fails verification and is discovered to
    // be a mispredicted-path fixpoint at the same seq: the branch
    // mispredict's redirect must win deterministically.
    request(50, 0x2000, 50, 0x800, SquashReason::ReuseVerifyFail);
    request(50, 0x3000, 50, 0x800, SquashReason::BranchMispredict);
    auto p = O3CpuTestPeer::pending(cpu_);
    EXPECT_EQ(p.redirectPC, 0x3000u);
    EXPECT_EQ(p.reason, SquashReason::BranchMispredict);

    // Lower-priority same-cause arrivals never displace it.
    request(50, 0x4000, 50, 0x800, SquashReason::MemOrderViolation);
    request(50, 0x5000, 50, 0x800, SquashReason::ReuseVerifyFail);
    p = O3CpuTestPeer::pending(cpu_);
    EXPECT_EQ(p.redirectPC, 0x3000u);
    EXPECT_EQ(p.reason, SquashReason::BranchMispredict);

    // Equal priority keeps the first arrival (stable, still one
    // deterministic winner).
    O3CpuTestPeer::clearPending(cpu_);
    request(50, 0x6000, 50, 0x800, SquashReason::MemOrderViolation);
    request(50, 0x7000, 50, 0x800, SquashReason::MemOrderViolation);
    p = O3CpuTestPeer::pending(cpu_);
    EXPECT_EQ(p.redirectPC, 0x6000u);
}
