#include <gtest/gtest.h>

#include "reuse/squash_log.hh"

using namespace mssr;

TEST(SquashLog, AppendAndCapacity)
{
    SquashLog log(2, 3);
    SquashLogEntry e;
    e.pc = 0x1000;
    EXPECT_TRUE(log.append(0, e));
    EXPECT_TRUE(log.append(0, e));
    EXPECT_TRUE(log.append(0, e));
    // Beyond capacity: younger squashed instructions are discarded.
    EXPECT_FALSE(log.append(0, e));
    EXPECT_EQ(log.stream(0).numEntries, 3u);
}

TEST(SquashLog, StreamsAreIndependent)
{
    SquashLog log(2, 4);
    SquashLogEntry e;
    e.pc = 0xaaa0;
    log.append(0, e);
    EXPECT_TRUE(log.stream(0).valid);
    EXPECT_FALSE(log.stream(1).valid);
    e.pc = 0xbbb0;
    log.append(1, e);
    EXPECT_EQ(log.stream(0).entries[0].pc, 0xaaa0u);
    EXPECT_EQ(log.stream(1).entries[0].pc, 0xbbb0u);
}

TEST(SquashLog, ClearStream)
{
    SquashLog log(1, 4);
    SquashLogEntry e;
    e.reserved = true;
    log.append(0, e);
    log.clearStream(0);
    EXPECT_FALSE(log.stream(0).valid);
    EXPECT_EQ(log.stream(0).numEntries, 0u);
    EXPECT_FALSE(log.stream(0).entries[0].valid);
    EXPECT_FALSE(log.stream(0).entries[0].reserved);
}

TEST(SquashLog, AllUnoccupiedTracksValidity)
{
    SquashLog log(2, 2);
    EXPECT_TRUE(log.allUnoccupied());
    SquashLogEntry e;
    log.append(1, e);
    EXPECT_FALSE(log.allUnoccupied());
    log.clearStream(1);
    EXPECT_TRUE(log.allUnoccupied());
}

TEST(SquashLog, EntryFieldsRoundTrip)
{
    SquashLog log(1, 2);
    SquashLogEntry e;
    e.pc = 0x1234;
    e.op = isa::Op::ADD;
    e.numSrcs = 2;
    e.srcRgid[0] = 5;
    e.srcRgid[1] = 6;
    e.dstRgid = 7;
    e.destPreg = 42;
    e.hasDest = true;
    e.executed = true;
    log.append(0, e);
    const SquashLogEntry &r = log.stream(0).entries[0];
    EXPECT_TRUE(r.valid);
    EXPECT_EQ(r.pc, 0x1234u);
    EXPECT_EQ(r.op, isa::Op::ADD);
    EXPECT_EQ(r.srcRgid[1], 6u);
    EXPECT_EQ(r.destPreg, 42u);
    EXPECT_TRUE(r.executed);
}
