#include <gtest/gtest.h>

#include "common/log.hh"
#include "core/free_list.hh"

using namespace mssr;

TEST(FreeList, InitialState)
{
    FreeList fl(64, 32);
    EXPECT_EQ(fl.numFree(), 32u);
    EXPECT_EQ(fl.state(0), PregState::Arch);
    EXPECT_EQ(fl.state(31), PregState::Arch);
    EXPECT_EQ(fl.state(32), PregState::Free);
}

TEST(FreeList, AllocRelease)
{
    FreeList fl(40, 32);
    const PhysReg r = fl.alloc();
    EXPECT_GE(r, 32);
    EXPECT_EQ(fl.state(r), PregState::InFlight);
    EXPECT_EQ(fl.numFree(), 7u);
    fl.release(r);
    EXPECT_EQ(fl.state(r), PregState::Free);
    EXPECT_EQ(fl.numFree(), 8u);
}

TEST(FreeList, CommitLifecycle)
{
    FreeList fl(40, 32);
    const PhysReg r = fl.alloc();
    fl.setArch(r);
    EXPECT_EQ(fl.state(r), PregState::Arch);
    fl.release(r); // prior mapping freed at a later commit
    EXPECT_EQ(fl.state(r), PregState::Free);
}

TEST(FreeList, ReservationLifecycle)
{
    FreeList fl(40, 32);
    const PhysReg r = fl.alloc();
    fl.reserve(r);
    EXPECT_EQ(fl.state(r), PregState::Reserved);
    EXPECT_EQ(fl.countState(PregState::Reserved), 1u);
    fl.adopt(r); // squash reuse
    EXPECT_EQ(fl.state(r), PregState::InFlight);
    fl.reserve(r);
    fl.release(r); // reservation released without reuse
    EXPECT_EQ(fl.state(r), PregState::Free);
}

TEST(FreeList, UnderflowAndDoubleFreePanic)
{
    FreeList fl(33, 32);
    const PhysReg r = fl.alloc();
    EXPECT_TRUE(fl.empty());
    EXPECT_THROW(fl.alloc(), SimPanic);
    fl.release(r);
    EXPECT_THROW(fl.release(r), SimPanic);
}

TEST(FreeList, InvalidTransitionsPanic)
{
    FreeList fl(40, 32);
    const PhysReg r = fl.alloc();
    EXPECT_THROW(fl.adopt(r), SimPanic);   // not reserved
    fl.setArch(r);
    EXPECT_THROW(fl.reserve(r), SimPanic); // not in flight
}

TEST(FreeList, FifoRecycling)
{
    FreeList fl(34, 32);
    const PhysReg a = fl.alloc();
    const PhysReg b = fl.alloc();
    fl.release(b);
    fl.release(a);
    EXPECT_EQ(fl.alloc(), b); // FIFO: b went back first
    EXPECT_EQ(fl.alloc(), a);
}
