#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/func_emu.hh"

using namespace mssr;
using namespace mssr::isa;

namespace
{

/** Runs source to halt, returns the emulator for state inspection. */
std::pair<std::unique_ptr<FuncEmu>, std::unique_ptr<Memory>>
runSource(const std::string &source, std::uint64_t max_insts = 100000)
{
    auto mem = std::make_unique<Memory>();
    static thread_local Program prog; // keep alive for the emu
    prog = assembleProgram(source);
    auto emu = std::make_unique<FuncEmu>(prog, *mem);
    emu->run(max_insts);
    return {std::move(emu), std::move(mem)};
}

} // namespace

TEST(FuncEmu, ArithmeticLoop)
{
    auto [emu, mem] = runSource(R"(
        li t0, 0
        li t1, 10
        li t2, 0
    loop:
        add t2, t2, t0
        addi t0, t0, 1
        blt t0, t1, loop
        halt
    )");
    EXPECT_TRUE(emu->halted());
    EXPECT_EQ(emu->reg(7), 45u); // t2 = sum 0..9
}

TEST(FuncEmu, LoadStoreRoundTrip)
{
    auto [emu, mem] = runSource(R"(
        li t0, 0x123456789abcdef0
        li t1, 0x200000
        sd t0, 0(t1)
        ld t2, 0(t1)
        lw t3, 0(t1)
        lwu t4, 0(t1)
        lb t5, 7(t1)
        halt
    )");
    EXPECT_EQ(emu->reg(7), 0x123456789abcdef0ull);   // t2
    EXPECT_EQ(emu->reg(28), 0xffffffff9abcdef0ull);  // t3: lw sext
    EXPECT_EQ(emu->reg(29), 0x9abcdef0ull);          // t4: lwu zext
    EXPECT_EQ(emu->reg(30), 0x12ull);                // t5
    EXPECT_EQ(mem->read64(0x200000), 0x123456789abcdef0ull);
}

TEST(FuncEmu, CallAndReturn)
{
    auto [emu, mem] = runSource(R"(
        li a0, 5
        call double_it
        mv s0, a0
        halt
    double_it:
        slli a0, a0, 1
        ret
    )");
    EXPECT_EQ(emu->reg(8), 10u); // s0
}

TEST(FuncEmu, ZeroRegisterIsImmutable)
{
    auto [emu, mem] = runSource(R"(
        addi zero, zero, 99
        mv t0, zero
        halt
    )");
    EXPECT_EQ(emu->reg(0), 0u);
    EXPECT_EQ(emu->reg(5), 0u);
}

TEST(FuncEmu, StackPointerInitialized)
{
    Program prog = assembleProgram(R"(
        addi sp, sp, -16
        sd ra, 8(sp)
        halt
    )");
    Memory mem;
    FuncEmu emu(prog, mem);
    EXPECT_EQ(emu.reg(2), prog.stackTop());
    emu.run();
    EXPECT_EQ(emu.reg(2), prog.stackTop() - 16);
}

TEST(FuncEmu, InstretCountsExecuted)
{
    auto [emu, mem] = runSource(R"(
        nop
        nop
        halt
    )");
    EXPECT_EQ(emu->instret(), 3u);
}

TEST(FuncEmu, RunRespectsMaxInsts)
{
    Program prog = assembleProgram(R"(
    spin:
        j spin
    )");
    Memory mem;
    FuncEmu emu(prog, mem);
    EXPECT_EQ(emu.run(1000), 1000u);
    EXPECT_FALSE(emu.halted());
}

TEST(FuncEmu, DataImageLoaded)
{
    Program prog;
    const Addr arr = prog.allocData("arr", 16);
    prog.initData64(arr, {42, -7});
    assemble(prog, R"(
        la t0, arr
        ld t1, 0(t0)
        ld t2, 8(t0)
        halt
    )");
    Memory mem;
    FuncEmu emu(prog, mem);
    emu.run();
    EXPECT_EQ(emu.reg(6), 42u);
    EXPECT_EQ(emu.reg(7), static_cast<RegVal>(-7));
}
