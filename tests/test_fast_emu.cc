/**
 * Fast functional tier co-simulation: FastEmu (the predecoded
 * basic-block dispatch cache) must be bit-identical to FuncEmu (the
 * reference step interpreter) on every observable -- architectural
 * registers, memory image, instret, PC, halt state, the recorded
 * branch history, fatal-on-wild-PC behaviour and checkpoint
 * save/restore -- across every workload, random branchy programs, and
 * arbitrary run() chunkings. The fast tier has no semantics of its
 * own; any divergence here is a bug in its predecode or dispatch.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "driver/sim_runner.hh"
#include "isa/assembler.hh"
#include "sim/checkpoint.hh"
#include "sim/fast_emu.hh"
#include "sim/func_emu.hh"
#include "workloads/registry.hh"

using namespace mssr;

namespace
{

/** Small-but-real workload sizing so the full-suite sweep stays fast. */
workloads::WorkloadScale
testScale()
{
    workloads::WorkloadScale scale;
    scale.graphScale = 6;
    scale.iterations = 60;
    return scale;
}

/**
 * Runs @p prog on both tiers with identical budgets and (bounded)
 * branch recording, then compares every observable.
 */
void
cosim(const isa::Program &prog, const std::string &label,
      std::uint64_t maxInsts = 0)
{
    Memory refMem;
    FuncEmu ref(prog, refMem);
    BranchHistory refHist;
    ref.recordBranches(&refHist);
    const std::uint64_t refExecuted = ref.run(maxInsts);

    Memory fastMem;
    FastEmu fast(prog, fastMem);
    BranchHistory fastHist;
    fast.recordBranches(&fastHist);
    const std::uint64_t fastExecuted = fast.run(maxInsts);

    EXPECT_EQ(fastExecuted, refExecuted) << label;
    EXPECT_EQ(fast.instret(), ref.instret()) << label;
    EXPECT_EQ(fast.halted(), ref.halted()) << label;
    EXPECT_EQ(fast.pc(), ref.pc()) << label;
    const auto fastRegs = fast.regs();
    for (unsigned r = 0; r < NumArchRegs; ++r)
        ASSERT_EQ(fastRegs[r], ref.reg(static_cast<ArchReg>(r)))
            << label << " reg " << isa::regName(static_cast<ArchReg>(r));
    EXPECT_TRUE(fastMem.equals(refMem)) << label;
    const std::vector<BranchOutcome> a = fastHist.inOrder();
    const std::vector<BranchOutcome> b = refHist.inOrder();
    ASSERT_EQ(a.size(), b.size()) << label;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_TRUE(a[i] == b[i]) << label << " control record " << i;
}

/**
 * Random branchy program (seeded): conditional stores, nested
 * branches, calls through JALR, divides, byte traffic -- the same
 * shape as the random-cosim generator, kept self-contained here.
 */
isa::Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed * 31 + 17);
    std::ostringstream os;
    const unsigned iters = 60 + rng.below(60);
    os << "    li s0, 0\n    li s1, " << iters << "\n";
    os << "    la s2, arena\n";
    os << "outer:\n";
    os << "    addi t0, s0, " << (1 + rng.below(1 << 16)) << "\n";
    os << "    li t1, -0x61c8864680b583eb\n    mul t0, t0, t1\n";
    os << "    srli t1, t0, 29\n    xor t0, t0, t1\n";
    const unsigned blocks = 3 + rng.below(5);
    for (unsigned b = 0; b < blocks; ++b) {
        const std::string l = "L" + std::to_string(b);
        switch (rng.below(6)) {
          case 0:
            os << "    andi t2, t0, " << (1u << rng.below(3)) << "\n"
               << "    beqz t2, " << l << "\n"
               << "    addi s3, s3, " << rng.below(64) << "\n"
               << l << ":\n"
               << "    xori s4, s4, " << rng.below(64) << "\n";
            break;
          case 1: // call through a hashed condition (JALR on the ret)
            os << "    andi t2, t0, 2\n"
               << "    bnez t2, " << l << "\n"
               << "    call helper" << (b % 2) << "\n"
               << l << ":\n";
            break;
          case 2: // conditional store + unconditional load
            os << "    andi t2, t0, 4\n"
               << "    beqz t2, " << l << "\n"
               << "    andi t3, t0, 120\n"
               << "    add t3, t3, s2\n"
               << "    sd s3, 0(t3)\n"
               << l << ":\n"
               << "    andi t4, t0, 248\n"
               << "    add t4, t4, s2\n"
               << "    ld s5, 0(t4)\n"
               << "    add s3, s3, s5\n";
            break;
          case 3: // division corner semantics
            os << "    ori t5, t0, 1\n"
               << "    div s7, s3, t5\n"
               << "    rem s8, s3, t5\n";
            break;
          case 4: // nested branches
            os << "    andi t2, t0, 1\n"
               << "    beqz t2, " << l << "a\n"
               << "    andi t3, t0, 8\n"
               << "    beqz t3, " << l << "b\n"
               << "    addi s9, s9, 1\n"
               << l << "b:\n"
               << "    addi s10, s10, 2\n"
               << l << "a:\n";
            break;
          default: // sub-word traffic
            os << "    andi t3, t0, 252\n"
               << "    add t3, t3, s2\n"
               << "    sb t0, 1(t3)\n"
               << "    sh t0, 2(t3)\n"
               << "    lbu s11, 0(t3)\n"
               << "    lh s6, 2(t3)\n";
            break;
        }
    }
    os << "    addi s0, s0, 1\n    blt s0, s1, outer\n    halt\n";
    os << "helper0:\n    addi a0, a0, 3\n    xori a0, a0, 9\n    ret\n";
    os << "helper1:\n    addi a1, a1, 5\n    ret\n";

    isa::Program prog;
    prog.allocData("arena", 512);
    isa::assemble(prog, os.str());
    return prog;
}

} // namespace

TEST(FastEmu, CosimEveryWorkloadToCompletion)
{
    const workloads::WorkloadScale scale = testScale();
    for (const std::string suite :
         {"spec2006", "spec2017", "gap", "micro"}) {
        for (const auto &w : workloads::suiteWorkloads(suite))
            cosim(workloads::buildWorkload(w.name, scale), w.name);
    }
}

TEST(FastEmu, CosimEveryWorkloadBounded)
{
    // A budget that stops mid-execution (and usually mid-block)
    // exercises the budget-limited inner loop and the final-PC
    // bookkeeping of a partial run.
    const workloads::WorkloadScale scale = testScale();
    for (const auto &w : workloads::suiteWorkloads("gap"))
        cosim(workloads::buildWorkload(w.name, scale), w.name, 12345);
}

class FastEmuRandom : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FastEmuRandom, CosimRandomProgram)
{
    const std::uint64_t seed = GetParam();
    cosim(randomProgram(seed), "seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastEmuRandom,
                         ::testing::Range<std::uint64_t>(1, 31));

TEST(FastEmu, ChunkedRunMatchesStepInterpreter)
{
    // run() must be restartable at any instruction boundary: feeding
    // awkward chunk sizes (hitting mid-block stops) has to track the
    // reference interpreter stepping the same chunks.
    const isa::Program prog = randomProgram(99);
    Memory refMem, fastMem;
    FuncEmu ref(prog, refMem);
    FastEmu fast(prog, fastMem);
    const std::uint64_t chunks[] = {1, 3, 7, 1, 64, 5, 1000, 2, 9999};
    for (const std::uint64_t chunk : chunks) {
        const std::uint64_t a = fast.run(chunk);
        const std::uint64_t b = ref.run(chunk);
        ASSERT_EQ(a, b) << "chunk " << chunk;
        ASSERT_EQ(fast.pc(), ref.pc()) << "chunk " << chunk;
        ASSERT_EQ(fast.instret(), ref.instret()) << "chunk " << chunk;
        ASSERT_EQ(fast.halted(), ref.halted()) << "chunk " << chunk;
    }
    // Finish both and compare the full final state.
    fast.run(0);
    ref.run(0);
    EXPECT_TRUE(fast.halted());
    EXPECT_EQ(fast.instret(), ref.instret());
    const auto regs = fast.regs();
    for (unsigned r = 0; r < NumArchRegs; ++r)
        ASSERT_EQ(regs[r], ref.reg(static_cast<ArchReg>(r)));
    EXPECT_TRUE(fastMem.equals(refMem));
}

TEST(FastEmu, HaltSemanticsMatchInterpreter)
{
    // HALT counts toward instret and the PC parks on the HALT
    // instruction; further run() calls execute nothing.
    const isa::Program prog = isa::assembleProgram(R"(
        addi t0, t0, 1
        addi t0, t0, 2
        halt
    )");
    Memory refMem, fastMem;
    FuncEmu ref(prog, refMem);
    FastEmu fast(prog, fastMem);
    EXPECT_EQ(fast.run(0), ref.run(0));
    EXPECT_EQ(fast.instret(), 3u);
    EXPECT_EQ(fast.instret(), ref.instret());
    EXPECT_EQ(fast.pc(), ref.pc());
    EXPECT_TRUE(fast.halted());
    EXPECT_EQ(fast.run(100), 0u);
    EXPECT_EQ(fast.instret(), 3u);
}

TEST(FastEmu, JalrLinkWithRdEqualRs1MatchesInterpreter)
{
    // jalr rd==rs1 must read the jump base before writing the link
    // register -- the classic ordering hazard for a dispatch rewrite.
    const std::string src = R"(
        la t0, target
        jalr t0, 0(t0)
        halt
    target:
        addi t1, t0, 0
        halt
    )";
    const isa::Program prog = isa::assembleProgram(src);
    Memory refMem, fastMem;
    FuncEmu ref(prog, refMem);
    FastEmu fast(prog, fastMem);
    ref.run(0);
    fast.run(0);
    EXPECT_EQ(fast.pc(), ref.pc());
    EXPECT_EQ(fast.reg(5), ref.reg(5));  // t0: the link value
    EXPECT_EQ(fast.reg(6), ref.reg(6));  // t1
    EXPECT_EQ(fast.instret(), ref.instret());
}

TEST(FastEmu, WildPcFatalsLikeInterpreter)
{
    // Jumping outside the code image is a user error: both tiers
    // must raise SimFatal when the wild PC is actually executed, and
    // only then (a budget that ends exactly at the jump defers it).
    const isa::Program prog = isa::assembleProgram(R"(
        li t0, 0x900000
        jr t0
        halt
    )");
    {
        Memory mem;
        FastEmu fast(prog, mem);
        EXPECT_EQ(fast.run(2), 2u); // stops after the jump, no fatal
        EXPECT_THROW(fast.run(1), SimFatal);
    }
    {
        Memory mem;
        FuncEmu ref(prog, mem);
        EXPECT_EQ(ref.run(2), 2u);
        EXPECT_THROW(ref.run(1), SimFatal);
    }
}

TEST(FastEmu, CheckpointInteropWithInterpreter)
{
    // A checkpoint taken on one tier restores into the other and the
    // resumed run finishes bit-identically to an uninterrupted
    // reference run -- the property the --func-tier flag relies on.
    const isa::Program prog =
        workloads::buildWorkload("bfs", testScale());

    Memory refMem;
    FuncEmu ref(prog, refMem);
    ref.run(0);
    const std::uint64_t total = ref.instret();
    ASSERT_GT(total, 1000u);

    for (const std::uint64_t k : {total / 5, total / 2, total - 1}) {
        // Fast tier saves, interpreter restores and finishes.
        Memory fastMem;
        FastEmu fast(prog, fastMem);
        fast.run(k);
        Checkpoint ck;
        fast.saveState(ck);

        Memory resumeMem;
        FuncEmu resume(prog, resumeMem);
        resume.restoreState(ck);
        EXPECT_EQ(resume.instret(), k);
        EXPECT_EQ(resume.pc(), fast.pc());
        resume.run(0);
        EXPECT_EQ(resume.instret(), total) << "k=" << k;
        EXPECT_EQ(resume.pc(), ref.pc()) << "k=" << k;
        EXPECT_EQ(resume.regs(), ref.regs()) << "k=" << k;
        EXPECT_TRUE(resumeMem.equals(refMem)) << "k=" << k;

        // Interpreter saves, fast tier restores and finishes.
        Memory interpMem;
        FuncEmu interp(prog, interpMem);
        interp.run(k);
        Checkpoint ck2;
        interp.saveState(ck2);

        Memory fastResumeMem;
        FastEmu fastResume(prog, fastResumeMem);
        fastResume.restoreState(ck2);
        EXPECT_EQ(fastResume.instret(), k);
        fastResume.run(0);
        EXPECT_EQ(fastResume.instret(), total) << "k=" << k;
        EXPECT_EQ(fastResume.pc(), ref.pc()) << "k=" << k;
        const auto regs = fastResume.regs();
        for (unsigned r = 0; r < NumArchRegs; ++r)
            ASSERT_EQ(regs[r], ref.reg(static_cast<ArchReg>(r)))
                << "k=" << k;
        EXPECT_TRUE(fastResumeMem.equals(refMem)) << "k=" << k;
    }
}

TEST(FastEmu, ComputeCheckpointIsTierInvariant)
{
    // The driver-level guarantee behind --func-tier: the produced
    // checkpoint -- registers, PC, instret, memory pages and the
    // bounded warm-up branch history -- is identical whichever tier
    // computed it.
    const workloads::WorkloadScale scale = testScale();
    for (const std::string name : {"bfs", "mcf", "nested-mispred"}) {
        const isa::Program prog = workloads::buildWorkload(name, scale);
        for (const std::uint64_t k : {std::uint64_t{1000}, std::uint64_t{30000}}) {
            const Checkpoint fast =
                computeCheckpoint(prog, k, FuncTier::Fast);
            const Checkpoint interp =
                computeCheckpoint(prog, k, FuncTier::Interpreter);
            EXPECT_TRUE(fast == interp) << name << " k=" << k;
        }
    }
}
