/**
 * Integration tests of squash reuse on the full core: reuse events
 * occur and help on reuse-friendly code, never fire without
 * mispredictions, and the paper's per-benchmark mechanisms (xz's
 * verification failures, mcf's memory-bound flatness) are visible.
 */

#include <gtest/gtest.h>

#include "driver/sim_runner.hh"
#include "isa/assembler.hh"
#include "workloads/micro.hh"
#include "workloads/registry.hh"

using namespace mssr;

namespace
{

isa::Program
h2pKernel(unsigned iters)
{
    // A hashed H2P branch guarding a small body, followed by a long
    // control-independent tail: the canonical squash-reuse scenario.
    workloads::MicroParams params;
    params.iterations = iters;
    return workloads::makeNestedMispred(params);
}

} // namespace

TEST(O3Reuse, ReuseEventsOccurAndHelp)
{
    const isa::Program prog = h2pKernel(1500);
    const RunResult base = runSim(prog, baselineConfig());
    const RunResult rgid = runSim(prog, rgidConfig(4, 64));
    EXPECT_GT(rgid.stats.get("reuse.success"), 500.0);
    EXPECT_GT(rgid.stats.get("reuse.reconvDetected"), 100.0);
    EXPECT_LT(rgid.cycles, base.cycles); // reuse must help here
}

TEST(O3Reuse, NoMispredictsNoReuse)
{
    // Fully predictable loop: nothing is ever squashed, so nothing
    // can be reused; the mechanism must not perturb the pipeline.
    const isa::Program prog = isa::assembleProgram(R"(
        li t0, 0
        li t1, 2000
    loop:
        addi t2, t2, 3
        xori t2, t2, 5
        addi t0, t0, 1
        blt t0, t1, loop
        halt
    )");
    const RunResult base = runSim(prog, baselineConfig());
    const RunResult rgid = runSim(prog, rgidConfig(4, 64));
    EXPECT_EQ(rgid.stats.get("reuse.success"), 0.0);
    // Warmup-only squashes allowed; cycle counts must be near equal.
    EXPECT_NEAR(static_cast<double>(rgid.cycles),
                static_cast<double>(base.cycles),
                static_cast<double>(base.cycles) * 0.02);
}

TEST(O3Reuse, MultiStreamFindsMoreReconvergence)
{
    const isa::Program prog = h2pKernel(1500);
    const RunResult one = runSim(prog, rgidConfig(1, 64));
    const RunResult four = runSim(prog, rgidConfig(4, 64));
    // With more streams, distance >= 2 reconvergence appears.
    const double fourDistant = four.stats.get("reuse.distance2") +
                               four.stats.get("reuse.distance3") +
                               four.stats.get("reuse.distance4");
    EXPECT_EQ(one.stats.get("reuse.distance2"), 0.0);
    EXPECT_GT(fourDistant, 0.0);
    EXPECT_GE(four.stats.get("reuse.success"),
              one.stats.get("reuse.success"));
}

TEST(O3Reuse, ReuseNeverExceedsSquashedWork)
{
    const isa::Program prog = h2pKernel(800);
    const RunResult r = runSim(prog, rgidConfig(4, 64));
    EXPECT_LE(r.stats.get("reuse.success"),
              r.stats.get("core.squashedInsts"));
    // Each detection claims a stream; a stream is re-detectable only
    // after a squash aborts its session, and at most numStreams (4)
    // sessions can be aborted per squash.
    EXPECT_LE(r.stats.get("reuse.reconvDetected"),
              r.stats.get("reuse.streamsCaptured") +
                  4 * r.stats.get("reuse.squashEvents"));
}

TEST(O3Reuse, BloomModeAlsoCorrectAndActive)
{
    workloads::MicroParams params;
    params.iterations = 800;
    const isa::Program prog = workloads::makeNestedMispred(params);
    SimConfig cfg = rgidConfig(4, 64);
    cfg.reuse.useBloomFilter = true;
    const RunResult bloom = runSim(prog, cfg);
    const RunResult base = runSim(prog, baselineConfig());
    EXPECT_GT(bloom.stats.get("reuse.success"), 0.0);
    // With the Bloom filter there is no re-execute verification.
    EXPECT_EQ(bloom.stats.get("core.verifyOk"), 0.0);
    EXPECT_EQ(bloom.archRegs[22], base.archRegs[22]); // checksum equal
}

TEST(O3Reuse, RegisterPressureIsHandled)
{
    // A tiny physical register file forces the policy-(5) reclaim
    // path; results must stay correct.
    const isa::Program prog = h2pKernel(400);
    SimConfig cfg = rgidConfig(4, 64);
    cfg.core.physRegs = 80; // 32 arch + few in flight + reservations
    const RunResult small = runSim(prog, cfg);
    const RunResult base = runSim(prog, baselineConfig());
    EXPECT_TRUE(small.halted);
    EXPECT_EQ(small.archRegs[22], base.archRegs[22]);
    EXPECT_GT(small.stats.get("reuse.pressureReclaims") +
                  small.stats.get("core.renameStallFreeList"),
              0.0);
}

TEST(O3Reuse, DisablingLoadReuseStillCorrect)
{
    workloads::WorkloadScale scale;
    scale.graphScale = 6;
    const isa::Program prog = workloads::buildWorkload("bfs", scale);
    SimConfig cfg = rgidConfig(4, 64);
    cfg.reuse.reuseLoads = false;
    const RunResult r = runSim(prog, cfg);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.stats.get("reuse.loadsReused"), 0.0);
}

TEST(O3Reuse, VpnRestrictionCanBeDisabled)
{
    const isa::Program prog = h2pKernel(400);
    SimConfig cfg = rgidConfig(4, 64);
    cfg.reuse.restrictVpn = false;
    const RunResult r = runSim(prog, cfg);
    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.stats.get("reuse.success"), 0.0);
}
