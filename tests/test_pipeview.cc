/**
 * Per-instruction pipeline lifecycle viewer: exact reconciliation of
 * the PipeView lifecycle counters with the core and ReuseFunnel
 * counters, no perturbation of simulation results, byte-identical
 * Kanata export across batch worker counts, fetch-cycle window gating
 * boundary cases, and the visible salvage lifecycle (a reused
 * instruction commits without issue/complete stamps).
 */

#include <gtest/gtest.h>

#include <deque>
#include <sstream>

#include "common/pipeview.hh"
#include "driver/batch_runner.hh"
#include "driver/sim_runner.hh"
#include "isa/assembler.hh"

using namespace mssr;

namespace
{

/** Hashed hard-to-predict branch loop: plenty of squashes and reuse. */
isa::Program
squashyProgram(int iterations = 300)
{
    std::ostringstream src;
    src << R"(
        li s0, 0
        li s1, )" << iterations << R"(
    loop:
        addi t0, s0, 999
        li t1, -0x61c8864680b583eb
        mul t0, t0, t1
        srli t1, t0, 31
        xor t0, t0, t1
        andi t1, t0, 1
        beqz t1, skip
        addi s2, s2, 1
    skip:
        addi s3, s3, 7
        xori s3, s3, 3
        addi s0, s0, 1
        blt s0, s1, loop
        halt
    )";
    return isa::assembleProgram(src.str());
}

RunResult
runWithView(const isa::Program &prog, SimConfig cfg, PipeView &view)
{
    cfg.pipeview = &view;
    return runSim(prog, cfg);
}

} // namespace

TEST(PipeView, CountsReconcileExactlyWithCoreAndFunnel)
{
    const isa::Program prog = squashyProgram();
    PipeView view;
    const RunResult r = runWithView(prog, rgidConfig(4, 64), view);
    const PipeView::Counts &c = view.counts();

    // Core-side lifecycle counters.
    EXPECT_EQ(c.committed, r.insts);
    EXPECT_EQ(c.squashed, static_cast<std::uint64_t>(
                              r.stats.get("core.squashedInsts")));
    EXPECT_EQ(c.fetched, static_cast<std::uint64_t>(
                             r.stats.get("core.fetchedInsts")));

    // Reuse-funnel lane counters, stage by stage.
    EXPECT_GT(r.funnel.reused, 0u) << "workload must exercise reuse";
    EXPECT_EQ(c.logged, r.funnel.logged);
    EXPECT_EQ(c.covered, r.funnel.covered);
    EXPECT_EQ(c.tested, r.funnel.tested);
    EXPECT_EQ(c.reused, r.funnel.reused);
    EXPECT_EQ(c.killKind, r.funnel.killKind);
    EXPECT_EQ(c.killNotExecuted, r.funnel.killNotExecuted);
    EXPECT_EQ(c.killRgid, r.funnel.killRgid);
    EXPECT_EQ(c.killRgidCapacity, r.funnel.killRgidCapacity);
    EXPECT_EQ(c.killBloom, r.funnel.killBloom);

    // Every fetched instruction got a record (unwindowed), and the
    // verdict tallies partition the tested count.
    EXPECT_EQ(view.numRecords(), c.fetched);
    EXPECT_EQ(c.tested, c.killKind + c.killNotExecuted + c.killRgid +
                            c.killRgidCapacity + c.killBloom + c.reused);
}

TEST(PipeView, RecordingDoesNotPerturbSimulation)
{
    const isa::Program prog = squashyProgram();
    for (const SimConfig &cfg :
         {rgidConfig(4, 64), baselineConfig(), regIntConfig(64, 2)}) {
        const RunResult off = runSim(prog, cfg);
        PipeView view;
        const RunResult on = runWithView(prog, cfg, view);
        EXPECT_EQ(off.cycles, on.cycles);
        EXPECT_EQ(off.insts, on.insts);
        EXPECT_EQ(off.archRegs, on.archRegs);
        EXPECT_EQ(off.stats.scalars(), on.stats.scalars());
    }
}

TEST(PipeView, SalvagedInstructionSkipsReexecution)
{
    const isa::Program prog = squashyProgram();
    PipeView view;
    runWithView(prog, rgidConfig(4, 64), view);

    std::size_t salvaged = 0, donorsSeen = 0;
    for (std::size_t i = 0; i < view.numRecords(); ++i) {
        const PipeView::Record &r = view.record(i);
        if (r.salvage == PipeView::NoStamp)
            continue;
        ++salvaged;
        // Adopter: completed at rename by adopting the donor's value.
        EXPECT_NE(r.rename, PipeView::NoStamp);
        EXPECT_EQ(r.salvage, r.rename);
        if (!r.needVerify) {
            EXPECT_EQ(r.issue, PipeView::NoStamp)
                << "salvaged seq " << r.seq << " re-executed";
            EXPECT_EQ(r.complete, PipeView::NoStamp);
        }
        // Its donor went squash -> squash log -> adopted.
        const PipeView::Record *donor = view.findRecord(r.donorSeq);
        ASSERT_NE(donor, nullptr);
        ++donorsSeen;
        EXPECT_NE(donor->squash, PipeView::NoStamp);
        EXPECT_NE(donor->logged, PipeView::NoStamp);
        EXPECT_NE(donor->tested, PipeView::NoStamp);
        EXPECT_EQ(donor->adopterSeq, r.seq);
        EXPECT_TRUE(donor->verdict == ReuseOutcome::Reused ||
                    donor->verdict == ReuseOutcome::ReusedNeedVerify);
    }
    EXPECT_EQ(salvaged, view.counts().reused);
    EXPECT_EQ(donorsSeen, salvaged);
}

TEST(PipeView, KanataExportIdenticalAcrossWorkerCounts)
{
    const isa::Program prog = squashyProgram();
    const std::vector<SimConfig> cfgs = {rgidConfig(4, 64),
                                         rgidConfig(1, 32),
                                         baselineConfig()};

    auto runWith = [&](unsigned workers) {
        std::deque<PipeView> views;
        std::vector<BatchJob> jobs;
        for (const SimConfig &cfg : cfgs) {
            views.emplace_back();
            SimConfig jobCfg = cfg;
            jobCfg.pipeview = &views.back();
            jobs.push_back(
                {"job" + std::to_string(jobs.size()), &prog, jobCfg, {}});
        }
        BatchRunner(workers).run(jobs);
        std::vector<std::string> out;
        for (const PipeView &v : views) {
            std::ostringstream os;
            v.writeKanata(os);
            out.push_back(os.str());
        }
        return out;
    };

    const std::vector<std::string> seq = runWith(1);
    const std::vector<std::string> par = runWith(4);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t j = 0; j < seq.size(); ++j) {
        EXPECT_GT(seq[j].size(), 0u);
        EXPECT_EQ(seq[j], par[j]) << "job " << j;
    }
}

TEST(PipeView, WindowGatesRecordsButNotCounters)
{
    const isa::Program prog = squashyProgram();
    const SimConfig cfg = rgidConfig(4, 64);

    PipeView full;
    const RunResult r = runWithView(prog, cfg, full);
    ASSERT_GT(r.cycles, 200u);

    // A mid-run window stores a strict subset of records...
    PipeView mid;
    mid.setWindow(100, 150);
    runWithView(prog, cfg, mid);
    EXPECT_GT(mid.numRecords(), 0u);
    EXPECT_LT(mid.numRecords(), full.numRecords());
    for (std::size_t i = 0; i < mid.numRecords(); ++i) {
        EXPECT_GE(mid.record(i).fetch, 100u);
        EXPECT_LT(mid.record(i).fetch, 150u);
    }
    // ...while every lifetime counter still matches the full run.
    EXPECT_EQ(mid.counts().fetched, full.counts().fetched);
    EXPECT_EQ(mid.counts().committed, full.counts().committed);
    EXPECT_EQ(mid.counts().squashed, full.counts().squashed);
    EXPECT_EQ(mid.counts().reused, full.counts().reused);

    // Start beyond the halt cycle: no records, full counters.
    PipeView late;
    late.setWindow(r.cycles + 1000, ~Cycle(0));
    runWithView(prog, cfg, late);
    EXPECT_EQ(late.numRecords(), 0u);
    EXPECT_EQ(late.counts().committed, full.counts().committed);

    // Zero-length window: equally empty.
    PipeView empty;
    empty.setWindow(100, 100);
    runWithView(prog, cfg, empty);
    EXPECT_EQ(empty.numRecords(), 0u);
    EXPECT_EQ(empty.counts().reused, full.counts().reused);

    // Lookups outside the window (or before the run) return null.
    EXPECT_EQ(empty.findRecord(1), nullptr);
    EXPECT_EQ(PipeView().findRecord(1), nullptr);
    ASSERT_GT(mid.numRecords(), 0u);
    EXPECT_EQ(mid.findRecord(mid.record(0).seq), &mid.record(0));
}

TEST(PipeView, KanataOutputShape)
{
    const isa::Program prog = squashyProgram(100);
    PipeView view;
    const RunResult r = runWithView(prog, rgidConfig(4, 64), view);
    ASSERT_GT(r.funnel.reused, 0u);

    std::ostringstream os;
    view.writeKanata(os, "\"build_info\": {\"git\": \"test\"}");
    const std::string text = os.str();
    EXPECT_EQ(text.compare(0, 12, "Kanata\t0004\n"), 0);
    EXPECT_NE(text.find("# mssr-pipeview-v1 {\"schema\": "
                        "\"mssr-pipeview-v1\", \"build_info\": "
                        "{\"git\": \"test\"}, \"window\": null"),
              std::string::npos);
    // The reuse lanes are present: a squash-log append, a salvage
    // marker, and a donor->adopter dependency edge.
    EXPECT_NE(text.find("\t1\tLg"), std::string::npos);
    EXPECT_NE(text.find("\t2\tSv"), std::string::npos);
    EXPECT_NE(text.find("W\t"), std::string::npos);
    // Retire records of both kinds (commit and flush).
    EXPECT_NE(text.find("\t0\nI\t"), std::string::npos);

    // An empty recorder still writes a valid header.
    std::ostringstream empty;
    PipeView().writeKanata(empty);
    EXPECT_EQ(empty.str().compare(0, 12, "Kanata\t0004\n"), 0);
    EXPECT_NE(empty.str().find("\"records\": 0"), std::string::npos);
}
