#include <gtest/gtest.h>

#include "driver/sim_runner.hh"
#include "isa/assembler.hh"

using namespace mssr;

TEST(O3Basic, StraightLineProgram)
{
    const isa::Program prog = isa::assembleProgram(R"(
        li t0, 7
        li t1, 35
        add t2, t0, t1
        halt
    )");
    const RunResult r = runSim(prog, baselineConfig());
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.insts, 4u);
    EXPECT_EQ(r.archRegs[7], 42u);
}

TEST(O3Basic, LoopWithPredictableBranch)
{
    const isa::Program prog = isa::assembleProgram(R"(
        li t0, 0
        li t1, 100
        li t2, 0
    loop:
        add t2, t2, t0
        addi t0, t0, 1
        blt t0, t1, loop
        halt
    )");
    const RunResult r = runSim(prog, baselineConfig());
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.archRegs[7], 4950u);
    // A tight predictable loop on an 8-wide core should exceed IPC 1.
    EXPECT_GT(r.ipc, 1.0);
}

TEST(O3Basic, StoreLoadForwardingThroughMemory)
{
    const isa::Program prog = isa::assembleProgram(R"(
        li t0, 0x300000
        li t1, 1234
        sd t1, 0(t0)
        ld t2, 0(t0)
        addi t3, t2, 1
        halt
    )");
    Memory mem;
    const RunResult r = runSim(prog, baselineConfig(), &mem);
    EXPECT_EQ(r.archRegs[7], 1234u);
    EXPECT_EQ(r.archRegs[28], 1235u);
    EXPECT_EQ(mem.read64(0x300000), 1234u);
}

TEST(O3Basic, MispredictionRecovery)
{
    // Data-dependent branch alternates direction: some mispredicts
    // are inevitable early, but the result must be exact.
    const isa::Program prog = isa::assembleProgram(R"(
        li t0, 0
        li t1, 64
        li t2, 0
        li t3, 0
    loop:
        andi t4, t0, 1
        beqz t4, even
        addi t2, t2, 3
        j next
    even:
        addi t3, t3, 5
    next:
        addi t0, t0, 1
        blt t0, t1, loop
        halt
    )");
    const RunResult r = runSim(prog, baselineConfig());
    EXPECT_EQ(r.archRegs[7], 32u * 3);  // t2
    EXPECT_EQ(r.archRegs[28], 32u * 5); // t3
}

TEST(O3Basic, CallReturnThroughRas)
{
    const isa::Program prog = isa::assembleProgram(R"(
        li s0, 0
        li s1, 20
    loop:
        mv a0, s0
        call square
        add s2, s2, a0
        addi s0, s0, 1
        blt s0, s1, loop
        halt
    square:
        mul a0, a0, a0
        ret
    )");
    const RunResult r = runSim(prog, baselineConfig());
    std::uint64_t expect = 0;
    for (std::uint64_t i = 0; i < 20; ++i)
        expect += i * i;
    EXPECT_EQ(r.archRegs[18], expect);
}

TEST(O3Basic, MemoryOrderViolationIsRepaired)
{
    // The load depends on the store's address register, which is
    // delayed through a divide chain; the load may speculate past the
    // store and must be squashed and re-executed when the store
    // resolves to the same address.
    const isa::Program prog = isa::assembleProgram(R"(
        li t0, 0x400000
        li t1, 99
        sd t1, 0(t0)
        li s0, 0
        li s1, 200
    loop:
        li t2, 36
        li t3, 6
        div t2, t2, t3
        mul t2, t2, t3      # t2 = 36, slowly
        li t4, 0x3fffdc
        add t4, t4, t2      # = 0x400000, late-resolving address
        li t5, 7
        sd t5, 0(t4)        # store to 0x400000, address late
        ld t6, 0(t0)        # load from 0x400000, address early
        add s2, s2, t6
        sd t1, 0(t0)        # restore 99
        addi s0, s0, 1
        blt s0, s1, loop
        halt
    )");
    const RunResult r = runSim(prog, baselineConfig());
    EXPECT_EQ(r.archRegs[18], 200u * 7);
    EXPECT_GT(r.stats.get("core.memOrderFlushes"), 0.0);
}

TEST(O3Basic, MaxInstsTerminates)
{
    const isa::Program prog = isa::assembleProgram(R"(
    spin:
        addi t0, t0, 1
        j spin
    )");
    const RunResult r = runSim(prog, baselineConfig(1000));
    EXPECT_GE(r.insts, 1000u);
    EXPECT_LT(r.insts, 1100u);
}

TEST(O3Basic, StatsArePopulated)
{
    const isa::Program prog = isa::assembleProgram(R"(
        li t0, 1
        halt
    )");
    const RunResult r = runSim(prog, baselineConfig());
    EXPECT_TRUE(r.stats.has("core.cycles"));
    EXPECT_TRUE(r.stats.has("core.ipc"));
    EXPECT_TRUE(r.stats.has("l1d.misses"));
    EXPECT_TRUE(r.stats.has("bpu.blocksFormed"));
}
