/**
 * BatchRunner / ThreadPool: the parallel batch engine must be an
 * exact drop-in for sequential runSim loops -- element-wise identical
 * results in submission order at every worker count -- plus basic
 * pool behavior (drain-on-wait, empty/single batches, MSSR_JOBS).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/thread_pool.hh"
#include "driver/batch_runner.hh"
#include "workloads/registry.hh"

using namespace mssr;

namespace
{

void
expectIdentical(const RunResult &a, const RunResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.insts, b.insts) << what;
    EXPECT_EQ(a.ipc, b.ipc) << what;
    EXPECT_EQ(a.halted, b.halted) << what;
    EXPECT_EQ(a.archRegs, b.archRegs) << what;
    EXPECT_EQ(a.stats.scalars(), b.stats.scalars()) << what;
}

/** A small cross-product of workloads and schemes. */
std::vector<BatchJob>
makeJobs(const std::vector<isa::Program> &programs)
{
    const std::vector<SimConfig> cfgs = {
        baselineConfig(), rgidConfig(2, 64), regIntConfig(64, 2)};
    std::vector<BatchJob> jobs;
    for (std::size_t p = 0; p < programs.size(); ++p)
        for (std::size_t c = 0; c < cfgs.size(); ++c)
            jobs.push_back({"job" + std::to_string(p) + "." +
                                std::to_string(c),
                            &programs[p], cfgs[c],
                            {}});
    return jobs;
}

std::vector<isa::Program>
makePrograms()
{
    workloads::WorkloadScale scale;
    scale.iterations = 150;
    scale.graphScale = 6;
    std::vector<isa::Program> programs;
    programs.push_back(workloads::buildWorkload("nested-mispred", scale));
    programs.push_back(workloads::buildWorkload("bfs", scale));
    return programs;
}

} // namespace

TEST(ThreadPool, RunsAllTasksAndWaits)
{
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
    EXPECT_EQ(pool.tasksSubmitted(), 100u);
    EXPECT_EQ(pool.numThreads(), 4u);

    // The pool stays usable after a wait().
    pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), 101);
}

TEST(ThreadPool, DrainsQueueOnDestruction)
{
    std::atomic<int> counter{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&counter] { counter.fetch_add(1); });
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(BatchRunner, MatchesSequentialRunSim)
{
    const std::vector<isa::Program> programs = makePrograms();
    const std::vector<BatchJob> jobs = makeJobs(programs);

    std::vector<RunResult> expected;
    for (const auto &job : jobs)
        expected.push_back(runSim(*job.program, job.config));

    const BatchRunner runner(4);
    const std::vector<RunResult> got = runner.run(jobs);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectIdentical(got[i], expected[i], jobs[i].name);
}

TEST(BatchRunner, SubmissionOrderPreservedAtEveryWorkerCount)
{
    const std::vector<isa::Program> programs = makePrograms();
    const std::vector<BatchJob> jobs = makeJobs(programs);
    const std::vector<RunResult> reference = BatchRunner(1).run(jobs);

    for (unsigned threads = 1; threads <= 8; ++threads) {
        const std::vector<RunResult> got = BatchRunner(threads).run(jobs);
        ASSERT_EQ(got.size(), reference.size()) << threads << " threads";
        for (std::size_t i = 0; i < got.size(); ++i)
            expectIdentical(got[i], reference[i],
                            std::to_string(threads) + " threads, " +
                                jobs[i].name);
    }
}

TEST(BatchRunner, EmptyAndSingleJobBatches)
{
    const BatchRunner runner(4);
    EXPECT_TRUE(runner.run({}).empty());

    const std::vector<isa::Program> programs = makePrograms();
    std::vector<BatchJob> one = {
        {"solo", &programs[0], rgidConfig(4, 64), {}}};
    const std::vector<RunResult> got = runner.run(one);
    ASSERT_EQ(got.size(), 1u);
    expectIdentical(got[0], runSim(programs[0], rgidConfig(4, 64)),
                    "solo");
    EXPECT_TRUE(got[0].halted);
}

TEST(BatchRunner, RecordsHostTiming)
{
    const std::vector<isa::Program> programs = makePrograms();
    const std::vector<RunResult> got =
        BatchRunner(2).run({{"timed", &programs[0], rgidConfig(2, 64), {}}});
    ASSERT_EQ(got.size(), 1u);
    EXPECT_GT(got[0].hostSeconds, 0.0);
    EXPECT_GT(got[0].kips, 0.0);
}

TEST(BatchRunner, InspectRunsPerJob)
{
    const std::vector<isa::Program> programs = makePrograms();
    std::vector<int> hits(3, 0);
    std::vector<BatchJob> jobs;
    for (int i = 0; i < 3; ++i) {
        BatchJob j{"inspect" + std::to_string(i), &programs[0],
                   rgidConfig(1, 64),
                   {}};
        j.inspect = [&hits, i](const O3Cpu &) { ++hits[i]; };
        jobs.push_back(std::move(j));
    }
    BatchRunner(3).run(jobs);
    EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(BatchRunner, MssrJobsEnvOverridesDefault)
{
    setenv("MSSR_JOBS", "3", 1);
    EXPECT_EQ(BatchRunner::defaultThreads(), 3u);
    EXPECT_EQ(BatchRunner().threads(), 3u);
    setenv("MSSR_JOBS", "not-a-number", 1);
    EXPECT_GE(BatchRunner::defaultThreads(), 1u);
    unsetenv("MSSR_JOBS");
    EXPECT_GE(BatchRunner::defaultThreads(), 1u);
    EXPECT_EQ(BatchRunner(5).threads(), 5u);
}

TEST(BatchRunner, MssrJobsRejectsGarbageLoudly)
{
    // The seed strtol'd the prefix and silently accepted "4x" as 4 and
    // fell back on "0"/garbage without a word. Every malformed value
    // must now fall back to hardware concurrency AND warn on stderr.
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    for (const char *bad : {"4x", "0", "-2", "", " 3", "99999999"}) {
        setenv("MSSR_JOBS", bad, 1);
        testing::internal::CaptureStderr();
        EXPECT_EQ(BatchRunner::defaultThreads(), hw)
            << "MSSR_JOBS='" << bad << "'";
        const std::string err = testing::internal::GetCapturedStderr();
        EXPECT_NE(err.find("MSSR_JOBS"), std::string::npos)
            << "no warning for MSSR_JOBS='" << bad << "'";
    }
    unsetenv("MSSR_JOBS");
}
