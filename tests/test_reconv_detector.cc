#include <gtest/gtest.h>

#include "reuse/reconv_detector.hh"

using namespace mssr;

namespace
{

WpbStream
makeStream(std::initializer_list<std::pair<Addr, Addr>> blocks,
           Addr vpn_pc = 0)
{
    WpbStream stream;
    stream.valid = true;
    for (auto [s, e] : blocks)
        stream.entries.push_back(WpbEntry{true, s, e});
    // Pad to a fixed size with invalid entries as the hardware would.
    while (stream.entries.size() < 8)
        stream.entries.push_back(WpbEntry{});
    stream.vpn = (vpn_pc ? vpn_pc : blocks.begin()->first) >> 12;
    return stream;
}

} // namespace

TEST(ReconvDetector, AlignerMasks)
{
    const WpbStream s = makeStream({{0x1000, 0x101c}, {0x1040, 0x105c}});
    // head_start below both ends -> both bits set in the left mask.
    EXPECT_EQ(ReconvDetector::leftAlignerMask(s, 0x0800), 0b11u);
    // head_start above the first block's end -> only entry 1.
    EXPECT_EQ(ReconvDetector::leftAlignerMask(s, 0x1020), 0b10u);
    // head_end below both starts -> right mask empty.
    EXPECT_EQ(ReconvDetector::rightAlignerMask(s, 0x0800), 0u);
    EXPECT_EQ(ReconvDetector::rightAlignerMask(s, 0x1040), 0b11u);
}

TEST(ReconvDetector, ExactOverlapDetection)
{
    const WpbStream s = makeStream({{0x1000, 0x101c}});
    // Overlapping block.
    ReconvHit hit = ReconvDetector::match(s, 0x1010, 0x102c, false);
    EXPECT_TRUE(hit.found);
    EXPECT_EQ(hit.entryIdx, 0u);
    EXPECT_EQ(hit.reconvPC, 0x1010u); // max(head_start, wpb_start)
    EXPECT_EQ(hit.instOffset, 4u);    // (0x1010-0x1000)/4
    // Disjoint block.
    EXPECT_FALSE(ReconvDetector::match(s, 0x1020, 0x103c, false).found);
    // Head entirely inside.
    hit = ReconvDetector::match(s, 0x1004, 0x1008, false);
    EXPECT_TRUE(hit.found);
    EXPECT_EQ(hit.reconvPC, 0x1004u);
}

TEST(ReconvDetector, PriorityEncoderPicksFirstEntry)
{
    // Two WPB entries cover overlapping PC ranges (a loop fetched
    // twice on the wrong path): the first (oldest) entry must win.
    const WpbStream s = makeStream({{0x1000, 0x101c}, {0x1000, 0x101c}});
    const ReconvHit hit = ReconvDetector::match(s, 0x1008, 0x1024, false);
    EXPECT_TRUE(hit.found);
    EXPECT_EQ(hit.entryIdx, 0u);
}

TEST(ReconvDetector, InstOffsetAccumulatesEarlierBlocks)
{
    const WpbStream s =
        makeStream({{0x1000, 0x101c}, {0x2000, 0x2004}, {0x3000, 0x301c}});
    const ReconvHit hit = ReconvDetector::match(s, 0x3008, 0x3024, false);
    EXPECT_TRUE(hit.found);
    EXPECT_EQ(hit.entryIdx, 2u);
    // 8 insts (block 0) + 2 insts (block 1) + (0x3008-0x3000)/4 = 12.
    EXPECT_EQ(hit.instOffset, 12u);
}

TEST(ReconvDetector, VpnRestriction)
{
    const WpbStream s = makeStream({{0x1000, 0x101c}});
    // Same page: found.
    EXPECT_TRUE(ReconvDetector::match(s, 0x1000, 0x101c, true).found);
    // A different page whose low bits alias would wrongly match
    // without the VPN compare.
    WpbStream aliased = s;
    const ReconvHit wrongPage =
        ReconvDetector::match(aliased, 0x5000 + 0, 0x5000 + 0x1c, true);
    EXPECT_FALSE(wrongPage.found);
}

TEST(ReconvDetector, SingleInstructionBlockAtHeadStart)
{
    // A WPB entry holding exactly one instruction (startPC == endPC,
    // inclusive range) overlapped right at its only PC: head_start ==
    // end_pc is the tightest legal overlap and must still hit.
    const WpbStream s = makeStream({{0x1000, 0x101c}, {0x2000, 0x2000}});
    const ReconvHit hit = ReconvDetector::match(s, 0x2000, 0x201c, false);
    EXPECT_TRUE(hit.found);
    EXPECT_EQ(hit.entryIdx, 1u);
    EXPECT_EQ(hit.reconvPC, 0x2000u);
    EXPECT_EQ(hit.instOffset, 8u); // all of block 0, none of block 1
}

TEST(ReconvDetector, AlignerMaskExactEquality)
{
    const WpbStream s = makeStream({{0x1000, 0x101c}});
    // Inclusive boundaries: head_start == endPC and head_end ==
    // startPC are overlaps, one instruction wide.
    EXPECT_EQ(ReconvDetector::leftAlignerMask(s, 0x101c), 0b1u);
    EXPECT_EQ(ReconvDetector::leftAlignerMask(s, 0x1020), 0u);
    EXPECT_EQ(ReconvDetector::rightAlignerMask(s, 0x1000), 0b1u);
    EXPECT_EQ(ReconvDetector::rightAlignerMask(s, 0x0ffc), 0u);
    // Both masks agree at the single-instruction overlap, so match()
    // hits the last instruction of the entry.
    const ReconvHit hit = ReconvDetector::match(s, 0x101c, 0x1038, false);
    EXPECT_TRUE(hit.found);
    EXPECT_EQ(hit.reconvPC, 0x101cu);
    EXPECT_EQ(hit.instOffset, 7u);
}

TEST(ReconvDetector, VpnRestrictedMismatchIgnoresOverlap)
{
    // The stream's VPN says page 0x5, but its entries (stale or
    // aliased) overlap a page-0x1 head block: the VPN compare must
    // veto the range overlap when the restriction is on, and only
    // then.
    const WpbStream s = makeStream({{0x1000, 0x101c}}, /*vpn_pc=*/0x5000);
    EXPECT_TRUE(ReconvDetector::match(s, 0x1000, 0x101c, false).found);
    EXPECT_FALSE(ReconvDetector::match(s, 0x1000, 0x101c, true).found);
}

TEST(ReconvDetector, PriorityEncoderFirstAmongSeveral)
{
    // Three distinct entries all overlap the head block: the priority
    // encoder must pick the first (lowest index), not the tightest.
    const WpbStream s = makeStream(
        {{0x1000, 0x101c}, {0x1008, 0x1010}, {0x100c, 0x100c}});
    const ReconvHit hit = ReconvDetector::match(s, 0x100c, 0x1028, false);
    EXPECT_TRUE(hit.found);
    EXPECT_EQ(hit.entryIdx, 0u);
    EXPECT_EQ(hit.reconvPC, 0x100cu);
    EXPECT_EQ(hit.instOffset, 3u); // offset within entry 0
}

TEST(ReconvDetector, InvalidStreamNeverMatches)
{
    WpbStream s = makeStream({{0x1000, 0x101c}});
    s.valid = false;
    EXPECT_FALSE(ReconvDetector::match(s, 0x1000, 0x101c, false).found);
}
