/**
 * Per-PC profiler: PcMap container semantics, BranchRecord partner /
 * distance bookkeeping, and -- the load-bearing part -- exact
 * reconciliation of the per-PC totals against the core's global
 * counters (no "other" PC bucket) on the cosim sweep workloads, plus
 * the guarantee that profiling never perturbs the simulation itself.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/profile.hh"
#include "driver/sim_runner.hh"
#include "workloads/registry.hh"

using namespace mssr;

namespace
{

isa::Program
sweepProgram()
{
    workloads::WorkloadScale scale;
    scale.iterations = 250;
    scale.graphScale = 6;
    return workloads::buildWorkload("nested-mispred", scale);
}

std::uint64_t
profileKillSum(const PcProfile &p)
{
    return p.total(&BranchRecord::killKind) +
           p.total(&BranchRecord::killNotExecuted) +
           p.total(&BranchRecord::killRgid) +
           p.total(&BranchRecord::killRgidCapacity);
}

} // namespace

TEST(PcMap, InsertFindGrowSorted)
{
    PcMap<ReconvRecord> map;
    // 300 PCs force several doublings past the 64-slot initial table.
    for (Addr pc = 0x1000; pc < 0x1000 + 300 * InstBytes; pc += InstBytes)
        map.at(pc).detections = pc;
    EXPECT_EQ(map.size(), 300u);

    for (Addr pc = 0x1000; pc < 0x1000 + 300 * InstBytes; pc += InstBytes) {
        const ReconvRecord *r = map.find(pc);
        ASSERT_NE(r, nullptr) << std::hex << pc;
        EXPECT_EQ(r->detections, pc);
    }
    EXPECT_EQ(map.find(0x0ffc), nullptr);
    EXPECT_EQ(map.find(0x1000 + 300 * InstBytes), nullptr);

    // at() on an existing key must not re-insert.
    map.at(0x1000).sessions = 7;
    EXPECT_EQ(map.size(), 300u);
    EXPECT_EQ(map.find(0x1000)->detections, 0x1000u);

    const std::vector<const ReconvRecord *> sorted = map.sortedByPc();
    ASSERT_EQ(sorted.size(), 300u);
    for (std::size_t i = 1; i < sorted.size(); ++i)
        EXPECT_LT(sorted[i - 1]->pc, sorted[i]->pc);
}

TEST(PcMap, Pc0IsTheEmptySentinel)
{
    PcMap<ReconvRecord> map;
    EXPECT_THROW(map.at(0), SimPanic);
    EXPECT_EQ(map.find(0), nullptr);
}

TEST(PcMap, EqualityIsOrderIndependent)
{
    PcMap<BranchRecord> a, b;
    // Different insertion orders (and thus different probe layouts
    // after growth) must still compare equal.
    for (Addr pc = 0x1000; pc < 0x1000 + 100 * InstBytes; pc += InstBytes)
        a.at(pc).mispredicts = pc;
    for (Addr pc = 0x1000 + 99 * InstBytes;; pc -= InstBytes) {
        b.at(pc).mispredicts = pc;
        if (pc == 0x1000)
            break;
    }
    EXPECT_TRUE(a == b);

    b.at(0x1000).mispredicts = 999;
    EXPECT_FALSE(a == b);
    b.at(0x1000).mispredicts = 0x1000;
    EXPECT_TRUE(a == b);
    b.at(0x2000 + 100 * InstBytes); // extra key
    EXPECT_FALSE(a == b);
}

TEST(BranchRecord, SpaceSavingPartners)
{
    BranchRecord r;
    EXPECT_EQ(r.topPartner(), 0u);

    // Fill all four partner slots.
    for (int i = 0; i < 3; ++i)
        r.noteDetection(0x2000, 0);
    for (int i = 0; i < 2; ++i)
        r.noteDetection(0x2004, 0);
    r.noteDetection(0x2008, 0);
    r.noteDetection(0x200c, 0);
    std::uint64_t count = 0;
    EXPECT_EQ(r.topPartner(&count), 0x2000u);
    EXPECT_EQ(count, 3u);

    // A fifth partner evicts the smallest counter and inherits it
    // (space-saving: count becomes smallest + 1 = 2).
    r.noteDetection(0x2010, 0);
    bool present = false;
    for (std::size_t i = 0; i < BranchRecord::NumPartners; ++i)
        if (r.partnerPC[i] == 0x2010) {
            present = true;
            EXPECT_EQ(r.partnerCount[i], 2u);
        }
    EXPECT_TRUE(present);
    EXPECT_EQ(r.topPartner(), 0x2000u);
}

TEST(BranchRecord, ReconvDistanceBuckets)
{
    BranchRecord r;
    // log2-ish buckets: 0 | 1 | 2-3 | 4-7 | 8-15 | 16-31 | 32-63 | >=64.
    const unsigned offsets[] = {0, 1, 2, 3, 4, 7, 8, 15, 16, 32, 64, 1000};
    for (unsigned off : offsets)
        r.noteDetection(0x2000, off);
    EXPECT_EQ(r.reconvDist[0], 1u);
    EXPECT_EQ(r.reconvDist[1], 1u);
    EXPECT_EQ(r.reconvDist[2], 2u);
    EXPECT_EQ(r.reconvDist[3], 2u);
    EXPECT_EQ(r.reconvDist[4], 2u);
    EXPECT_EQ(r.reconvDist[5], 1u);
    EXPECT_EQ(r.reconvDist[6], 1u);
    EXPECT_EQ(r.reconvDist[7], 2u);
}

TEST(BranchRecord, FunnelAlgebra)
{
    BranchRecord r;
    r.squashedInsts = 100;
    r.logged = 60;
    r.covered = 40;
    r.tested = 30;
    r.killKind = 4;
    r.killNotExecuted = 3;
    r.killRgid = 2;
    r.killRgidCapacity = 1;
    r.killBloom = 5;
    r.reused = 15;

    const ReuseFunnel f = r.funnel();
    EXPECT_EQ(f.squashed, 100u);
    EXPECT_EQ(f.tested, 30u);
    EXPECT_EQ(f.rgidPass, 20u);   // tested - non-bloom kills
    EXPECT_EQ(f.hazardPass, 15u); // rgidPass - killBloom
    EXPECT_EQ(f.reused, 15u);
    EXPECT_TRUE(f.monotonic());
}

TEST(Profile, ReconciliationIsExact)
{
    const isa::Program prog = sweepProgram();
    for (SimConfig cfg :
         {rgidConfig(1, 16), rgidConfig(2, 64), rgidConfig(4, 128)}) {
        cfg.profiling = true;
        const RunResult r = runSim(prog, cfg);
        const PcProfile &p = r.profile;
        const std::string what = toString(cfg.reuseKind);
        ASSERT_FALSE(p.empty()) << what;

        // Squashed instructions: summed per cause PC == core counter
        // == funnel entry stage. No "other" bucket to hide slop in.
        EXPECT_EQ(p.total(&BranchRecord::squashedInsts),
                  static_cast<std::uint64_t>(
                      r.stats.get("core.squashedInsts")))
            << what;
        EXPECT_EQ(p.total(&BranchRecord::squashedInsts), r.funnel.squashed)
            << what;

        // Recovery penalty: per-PC slots == the CPI stack's recovery
        // categories, split by squash reason exactly.
        EXPECT_EQ(p.total(&BranchRecord::branchRecoverySlots),
                  r.cpi[CpiCat::BranchRecovery])
            << what;
        EXPECT_EQ(p.total(&BranchRecord::flushRecoverySlots),
                  r.cpi[CpiCat::FlushRecovery])
            << what;

        // Reuse funnel: every stage and kill decomposes per branch PC.
        EXPECT_EQ(p.total(&BranchRecord::logged), r.funnel.logged) << what;
        EXPECT_EQ(p.total(&BranchRecord::covered), r.funnel.covered) << what;
        EXPECT_EQ(p.total(&BranchRecord::tested), r.funnel.tested) << what;
        EXPECT_EQ(p.total(&BranchRecord::reused), r.funnel.reused) << what;
        EXPECT_EQ(p.total(&BranchRecord::reused),
                  static_cast<std::uint64_t>(r.stats.get("reuse.success")))
            << what;
        EXPECT_EQ(profileKillSum(p), r.funnel.killKind +
                                         r.funnel.killNotExecuted +
                                         r.funnel.killRgid +
                                         r.funnel.killRgidCapacity)
            << what;
        EXPECT_EQ(p.total(&BranchRecord::killBloom), r.funnel.killBloom)
            << what;

        // The reconvergence-side ledger balances the branch-side one.
        EXPECT_EQ(p.totalSalvaged(), p.total(&BranchRecord::reused)) << what;

        // Each branch's own mini funnel obeys the stage algebra.
        ASSERT_GT(r.funnel.reused, 0u) << what;
        for (const BranchRecord *b : p.branches().sortedByPc())
            EXPECT_TRUE(b->funnel().monotonic())
                << what << " pc " << std::hex << b->pc;
    }
}

TEST(Profile, BaselineAttributesSquashesOnly)
{
    SimConfig cfg = baselineConfig();
    cfg.profiling = true;
    const RunResult r = runSim(sweepProgram(), cfg);
    const PcProfile &p = r.profile;
    ASSERT_FALSE(p.empty());
    EXPECT_GT(p.total(&BranchRecord::squashedInsts), 0u);
    EXPECT_EQ(p.total(&BranchRecord::squashedInsts),
              static_cast<std::uint64_t>(r.stats.get("core.squashedInsts")));
    EXPECT_EQ(p.total(&BranchRecord::branchRecoverySlots),
              r.cpi[CpiCat::BranchRecovery]);
    // No reuse unit: the per-branch funnels stop at squashed.
    EXPECT_EQ(p.total(&BranchRecord::logged), 0u);
    EXPECT_EQ(p.total(&BranchRecord::reused), 0u);
    EXPECT_EQ(p.reconvs().size(), 0u);
}

TEST(Profile, ProfilingDoesNotPerturbTheRun)
{
    const isa::Program prog = sweepProgram();
    for (SimConfig cfg : {baselineConfig(), rgidConfig(4, 64)}) {
        cfg.profiling = false;
        const RunResult off = runSim(prog, cfg);
        EXPECT_TRUE(off.profile.empty());

        cfg.profiling = true;
        const RunResult on = runSim(prog, cfg);
        EXPECT_FALSE(on.profile.empty());

        EXPECT_EQ(off.cycles, on.cycles) << toString(cfg.reuseKind);
        EXPECT_EQ(off.insts, on.insts);
        EXPECT_TRUE(off.cpi == on.cpi);
        EXPECT_TRUE(off.funnel == on.funnel);
        for (const auto &[key, value] : off.stats.scalars())
            EXPECT_EQ(value, on.stats.get(key)) << key;
    }
}

TEST(Profile, JsonAndFoldedExports)
{
    SimConfig cfg = rgidConfig(4, 64);
    cfg.profiling = true;
    const RunResult r = runSim(sweepProgram(), cfg);

    std::ostringstream json;
    writeJson(json, r.profile);
    const std::string j = json.str();
    EXPECT_NE(j.find("\"branches\""), std::string::npos);
    EXPECT_NE(j.find("\"reconv_points\""), std::string::npos);
    EXPECT_NE(j.find("\"branch_recovery_slots\""), std::string::npos);
    EXPECT_NE(j.find("\"partners\""), std::string::npos);

    // Folded lines: `branchPC;reconvPC;category slots`, and the slot
    // total over the recovery categories reconciles with the CPI stack.
    std::ostringstream folded;
    writeFolded(folded, r.profile, "");
    std::istringstream lines(folded.str());
    std::string line;
    std::uint64_t recoverySlots = 0;
    std::size_t nLines = 0;
    while (std::getline(lines, line)) {
        ++nLines;
        ASSERT_EQ(line.compare(0, 2, "0x"), 0) << line;
        const std::size_t sep = line.rfind(' ');
        ASSERT_NE(sep, std::string::npos) << line;
        if (line.find(";branch_recovery ") != std::string::npos ||
            line.find(";flush_recovery ") != std::string::npos)
            recoverySlots += std::stoull(line.substr(sep + 1));
    }
    EXPECT_GT(nLines, 0u);
    EXPECT_EQ(recoverySlots, r.cpi[CpiCat::BranchRecovery] +
                                 r.cpi[CpiCat::FlushRecovery]);

    // A run-name root frame is prepended on request (multi-run files).
    std::ostringstream named;
    writeFolded(named, r.profile, "rgid4x64");
    EXPECT_EQ(named.str().compare(0, 9, "rgid4x64;"), 0);
}
