#include <gtest/gtest.h>

#include "analysis/complexity_model.hh"

using namespace mssr::analysis;

TEST(ComplexityModel, ReconvDetectionScalesWithWpbSize)
{
    const auto small = reconvDetectionComplexity(4, 16);
    const auto mid = reconvDetectionComplexity(4, 32);
    const auto large = reconvDetectionComplexity(4, 64);
    // Area and power scale roughly linearly with total entries
    // (Table 4 trend); logic levels grow slowly (log depth).
    EXPECT_LT(small.areaUm2, mid.areaUm2);
    EXPECT_LT(mid.areaUm2, large.areaUm2);
    EXPECT_LT(small.powerMw, mid.powerMw);
    EXPECT_LE(small.logicLevels, large.logicLevels);
    EXPECT_NEAR(large.areaUm2 / small.areaUm2, 4.0, 0.6);
}

TEST(ComplexityModel, ReconvDetectionAnchorsNearPaper)
{
    // The smallest configuration is calibrated against Table 4
    // (4x16: 13 levels, 2682 um^2, 1.508 mW).
    const auto e = reconvDetectionComplexity(4, 16);
    EXPECT_NEAR(e.areaUm2, 2682.0, 300.0);
    EXPECT_NEAR(e.powerMw, 1.508, 0.2);
    EXPECT_NEAR(static_cast<double>(e.logicLevels), 13.0, 4.0);
}

TEST(ComplexityModel, ReuseTestScalesWithPipelineWidth)
{
    const auto w4 = reuseTestComplexity(4);
    const auto w6 = reuseTestComplexity(6);
    const auto w8 = reuseTestComplexity(8);
    EXPECT_LT(w4.logicLevels, w8.logicLevels);
    EXPECT_LT(w4.areaUm2, w6.areaUm2);
    EXPECT_LT(w6.areaUm2, w8.areaUm2);
    EXPECT_LT(w4.powerMw, w8.powerMw);
}

TEST(ComplexityModel, ReuseTestAnchorsNearPaper)
{
    // Table 4: width 4 -> 28 levels, 3201 um^2, 3.039 mW.
    const auto e = reuseTestComplexity(4);
    EXPECT_NEAR(e.areaUm2, 3201.0, 400.0);
    EXPECT_NEAR(e.powerMw, 3.039, 0.4);
    EXPECT_NEAR(static_cast<double>(e.logicLevels), 28.0, 14.0);
}

TEST(ComplexityModel, LogEntriesHaveMinorLevelImpact)
{
    // The paper notes ROB/log sizing barely affects the critical path.
    const auto p64 = reuseTestComplexity(8, 64);
    const auto p128 = reuseTestComplexity(8, 128);
    EXPECT_LE(p128.logicLevels - p64.logicLevels, 2u);
}
