/**
 * ThreadPool error contract and lifecycle: a task exception must not
 * kill its worker (the queue keeps draining), the first exception is
 * rethrown by the next wait() on the calling thread and then cleared
 * (the pool stays usable), submit() after shutdown() throws instead
 * of deadlocking, and FIFO ordering / saturation hold at every pool
 * size. test_batch_runner.cc covers the happy-path batch semantics;
 * this file covers the edges.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hh"

using namespace mssr;

namespace
{

TEST(ThreadPoolTest, TaskExceptionRethrownByWait)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("task boom"); });
    for (int i = 0; i < 8; ++i)
        pool.submit([&ran] { ran.fetch_add(1); });
    EXPECT_THROW(
        {
            try {
                pool.wait();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ("task boom", e.what());
                throw;
            }
        },
        std::runtime_error);
    // The throwing task did not take its worker down: every other
    // task still ran.
    EXPECT_EQ(8, ran.load());
}

TEST(ThreadPoolTest, PoolUsableAfterException)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("first"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // The error was cleared by the wait() that reported it.
    std::atomic<int> ran{0};
    pool.submit([&ran] { ran.fetch_add(1); });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(1, ran.load());
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsKept)
{
    ThreadPool pool(1);
    pool.submit([] { throw std::runtime_error("one"); });
    pool.submit([] { throw std::logic_error("two"); });
    // One worker drains in FIFO order, so "one" is first.
    EXPECT_THROW(
        {
            try {
                pool.wait();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ("one", e.what());
                throw;
            }
        },
        std::runtime_error);
    EXPECT_NO_THROW(pool.wait());
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.shutdown();
    EXPECT_EQ(1, ran.load()) << "shutdown() must drain the queue";
    EXPECT_THROW(pool.submit([] {}), std::logic_error);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent)
{
    ThreadPool pool(2);
    pool.submit([] {});
    pool.shutdown();
    EXPECT_NO_THROW(pool.shutdown());
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(1u, pool.tasksSubmitted());
}

TEST(ThreadPoolTest, SaturationCompletesEveryTask)
{
    // Far more tasks than workers: all must run exactly once even
    // when the queue is deeply backed up.
    ThreadPool pool(3);
    const int n = 500;
    std::atomic<int> ran{0};
    for (int i = 0; i < n; ++i) {
        pool.submit([&ran] {
            std::this_thread::sleep_for(std::chrono::microseconds(10));
            ran.fetch_add(1);
        });
    }
    pool.wait();
    EXPECT_EQ(n, ran.load());
    EXPECT_EQ(static_cast<std::uint64_t>(n), pool.tasksSubmitted());
}

TEST(ThreadPoolTest, SingleWorkerPreservesFifoOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    for (int i = 0; i < 32; ++i)
        pool.submit([&order, i] { order.push_back(i); });
    pool.wait();
    ASSERT_EQ(32u, order.size());
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(i, order[i]);
}

TEST(ThreadPoolTest, AtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.numThreads(), 1u);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran.store(true); });
    pool.wait();
    EXPECT_TRUE(ran.load());
}

} // namespace
