#include <gtest/gtest.h>

#include "sim/memory.hh"

using namespace mssr;

TEST(Memory, ZeroInitialized)
{
    Memory mem;
    EXPECT_EQ(mem.read64(0x1000), 0u);
    EXPECT_EQ(mem.numPages(), 0u); // reads allocate nothing
}

TEST(Memory, ReadWriteRoundTrip)
{
    Memory mem;
    mem.write64(0x2000, 0xdeadbeefcafebabeull);
    EXPECT_EQ(mem.read64(0x2000), 0xdeadbeefcafebabeull);
    EXPECT_EQ(mem.read32(0x2000), 0xcafebabeu);
    EXPECT_EQ(mem.read8(0x2007), 0xdeu);
}

TEST(Memory, LittleEndianByteOrder)
{
    Memory mem;
    mem.write(0x3000, 0x0102030405060708ull, 8);
    EXPECT_EQ(mem.read8(0x3000), 0x08u);
    EXPECT_EQ(mem.read8(0x3007), 0x01u);
}

TEST(Memory, CrossPageAccess)
{
    Memory mem;
    const Addr addr = Memory::PageBytes - 4;
    mem.write64(addr, 0x1122334455667788ull);
    EXPECT_EQ(mem.read64(addr), 0x1122334455667788ull);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(Memory, PartialWidthWrites)
{
    Memory mem;
    mem.write64(0x100, ~0ull);
    mem.write8(0x100, 0);
    EXPECT_EQ(mem.read64(0x100), 0xffffffffffffff00ull);
    mem.write(0x102, 0xabcd, 2);
    EXPECT_EQ(mem.read(0x102, 2), 0xabcdu);
}

TEST(Memory, Equals)
{
    Memory a, b;
    EXPECT_TRUE(a.equals(b));
    a.write64(0x5000, 42);
    EXPECT_FALSE(a.equals(b));
    b.write64(0x5000, 42);
    EXPECT_TRUE(a.equals(b));
    // Explicit zero page on one side still equals a missing page.
    a.write64(0x9000, 0);
    EXPECT_TRUE(a.equals(b));
}
