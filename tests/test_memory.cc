#include <gtest/gtest.h>

#include <map>

#include "sim/memory.hh"

using namespace mssr;

TEST(Memory, ZeroInitialized)
{
    Memory mem;
    EXPECT_EQ(mem.read64(0x1000), 0u);
    EXPECT_EQ(mem.numPages(), 0u); // reads allocate nothing
}

TEST(Memory, ReadWriteRoundTrip)
{
    Memory mem;
    mem.write64(0x2000, 0xdeadbeefcafebabeull);
    EXPECT_EQ(mem.read64(0x2000), 0xdeadbeefcafebabeull);
    EXPECT_EQ(mem.read32(0x2000), 0xcafebabeu);
    EXPECT_EQ(mem.read8(0x2007), 0xdeu);
}

TEST(Memory, LittleEndianByteOrder)
{
    Memory mem;
    mem.write(0x3000, 0x0102030405060708ull, 8);
    EXPECT_EQ(mem.read8(0x3000), 0x08u);
    EXPECT_EQ(mem.read8(0x3007), 0x01u);
}

TEST(Memory, CrossPageAccess)
{
    Memory mem;
    const Addr addr = Memory::PageBytes - 4;
    mem.write64(addr, 0x1122334455667788ull);
    EXPECT_EQ(mem.read64(addr), 0x1122334455667788ull);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(Memory, PartialWidthWrites)
{
    Memory mem;
    mem.write64(0x100, ~0ull);
    mem.write8(0x100, 0);
    EXPECT_EQ(mem.read64(0x100), 0xffffffffffffff00ull);
    mem.write(0x102, 0xabcd, 2);
    EXPECT_EQ(mem.read(0x102, 2), 0xabcdu);
}

TEST(Memory, Equals)
{
    Memory a, b;
    EXPECT_TRUE(a.equals(b));
    a.write64(0x5000, 42);
    EXPECT_FALSE(a.equals(b));
    b.write64(0x5000, 42);
    EXPECT_TRUE(a.equals(b));
    // Explicit zero page on one side still equals a missing page.
    a.write64(0x9000, 0);
    EXPECT_TRUE(a.equals(b));
}

TEST(Memory, EqualsPageAllocatedOnOneSideOnly)
{
    // Regression for the sparse-map comparison: a page present on only
    // one side is equal iff it is entirely zero, in both directions.
    Memory a, b;
    a.write8(0x20000, 0); // allocated but all-zero, only in a
    EXPECT_TRUE(a.equals(b));
    EXPECT_TRUE(b.equals(a));
    EXPECT_EQ(a.numPages(), 1u);
    EXPECT_EQ(b.numPages(), 0u);

    b.write8(0x30000, 7); // non-zero page only in b
    EXPECT_FALSE(a.equals(b));
    EXPECT_FALSE(b.equals(a));
    b.write8(0x30000, 0); // zeroed again: page still allocated
    EXPECT_TRUE(a.equals(b));
    EXPECT_TRUE(b.equals(a));
}

namespace
{

/** Cache-free reference model: one byte per address. */
class ReferenceMemory
{
  public:
    void
    write(Addr addr, std::uint64_t value, unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            bytes_[addr + i] = static_cast<std::uint8_t>(value >> (8 * i));
    }

    std::uint64_t
    read(Addr addr, unsigned n) const
    {
        std::uint64_t out = 0;
        for (unsigned i = 0; i < n; ++i) {
            auto it = bytes_.find(addr + i);
            const std::uint8_t byte = it == bytes_.end() ? 0 : it->second;
            out |= static_cast<std::uint64_t>(byte) << (8 * i);
        }
        return out;
    }

  private:
    std::map<Addr, std::uint8_t> bytes_;
};

} // namespace

TEST(Memory, LastPageCacheAccessPatterns)
{
    // Sequential, strided and page-crossing traffic, cross-checked
    // against the cache-free reference model. The mix is designed to
    // hit, thrash and bypass the one-entry last-page cache: long
    // sequential runs (hits), alternating far pages (misses), and
    // unaligned accesses straddling page boundaries (slow path).
    Memory mem;
    ReferenceMemory ref;
    std::uint64_t lcg = 12345;
    auto next = [&lcg] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return lcg;
    };

    const Addr base = 3 * Memory::PageBytes;
    // Sequential writes marching through four pages.
    for (Addr a = base; a < base + 4 * Memory::PageBytes; a += 8) {
        const std::uint64_t v = next();
        mem.write(a, v, 8);
        ref.write(a, v, 8);
    }
    // Strided read/write mix alternating between distant pages.
    for (unsigned i = 0; i < 512; ++i) {
        const Addr a = base + (i % 2 ? 0 : 64 * Memory::PageBytes) +
                       (next() % (2 * Memory::PageBytes));
        const unsigned n = 1 + next() % 8;
        if (next() % 3 == 0) {
            const std::uint64_t v = next();
            mem.write(a, v, n);
            ref.write(a, v, n);
        }
        ASSERT_EQ(mem.read(a, n), ref.read(a, n)) << std::hex << a;
    }
    // Page-crossing accesses at every offset near a boundary.
    const Addr edge = base + 2 * Memory::PageBytes;
    for (unsigned off = 1; off <= 7; ++off) {
        const Addr a = edge - off;
        const std::uint64_t v = next();
        mem.write(a, v, 8);
        ref.write(a, v, 8);
        ASSERT_EQ(mem.read(a, 8), ref.read(a, 8)) << "offset " << off;
    }
    // Full sequential readback: the cache must never serve stale data.
    for (Addr a = base; a < base + 4 * Memory::PageBytes; a += 8)
        ASSERT_EQ(mem.read(a, 8), ref.read(a, 8)) << std::hex << a;
}

TEST(Memory, CacheDoesNotCacheAbsentPages)
{
    Memory mem;
    // Miss on an unallocated page must not be cached: a later write
    // has to be visible to the next read of the same page.
    EXPECT_EQ(mem.read64(0x40000), 0u);
    EXPECT_EQ(mem.numPages(), 0u);
    mem.write64(0x40000, 0xfeedface);
    EXPECT_EQ(mem.read64(0x40000), 0xfeedfaceull);

    // A read hit caching page A must not shadow page B.
    mem.write64(0x40000 + Memory::PageBytes, 0xbeef);
    EXPECT_EQ(mem.read64(0x40000), 0xfeedfaceull);
    EXPECT_EQ(mem.read64(0x40000 + Memory::PageBytes), 0xbeefull);
    EXPECT_EQ(mem.read64(0x40000), 0xfeedfaceull);
}
