#include <gtest/gtest.h>

#include "analysis/storage_model.hh"
#include "common/bitops.hh"

using namespace mssr::analysis;

TEST(StorageModel, MatchesTable2ConstantPart)
{
    const StorageBreakdown b = computeStorage(StorageParams{});
    // Table 2: (4 x 6 x 256 + 64 x 6 + 64 x 6 x 32) = 18816 bits.
    EXPECT_EQ(b.robRgidBits, 4u * 6 * 256);
    EXPECT_EQ(b.ratRgidBits, 64u * 6);
    EXPECT_EQ(b.ratCheckpointBits, 64u * 6 * 32);
    EXPECT_EQ(b.constantBits(), 18816u);
    EXPECT_NEAR(b.constantKB(), 2.30, 0.005);
}

TEST(StorageModel, MatchesTable2VariablePart)
{
    // N=4, M=16, P=64: (23M + 33P + 36)N + log2(M P N^4) = 10082 bits.
    const StorageBreakdown b = computeStorage(StorageParams{});
    EXPECT_EQ(b.variableBits(), 10082u);
    EXPECT_NEAR(b.variableKB(), 1.23, 0.005);
    EXPECT_NEAR(b.totalKB(), 3.53, 0.01);
}

TEST(StorageModel, Table2ClosedFormAgreesWithBreakdown)
{
    // Check the paper's closed-form for several configurations.
    for (unsigned n : {1u, 2u, 4u, 8u}) {
        for (unsigned m : {8u, 16u, 32u}) {
            for (unsigned p : {32u, 64u, 128u}) {
                StorageParams params;
                params.numStreams = n;
                params.wpbEntries = m;
                params.squashLogEntries = p;
                const StorageBreakdown b = computeStorage(params);
                const std::uint64_t pointers =
                    2 * mssr::log2ceil(n) + mssr::log2ceil(m) +
                    2 * mssr::log2ceil(n) + mssr::log2ceil(p);
                const std::uint64_t closedForm =
                    std::uint64_t(23 * m + 33 * p + 36) * n + pointers;
                EXPECT_EQ(b.variableBits(), closedForm)
                    << "N=" << n << " M=" << m << " P=" << p;
            }
        }
    }
}

TEST(StorageModel, ScalesLinearlyInStreams)
{
    StorageParams params;
    params.numStreams = 2;
    const auto two = computeStorage(params);
    params.numStreams = 4;
    const auto four = computeStorage(params);
    // Entry storage doubles; only pointer widths deviate slightly.
    EXPECT_NEAR(static_cast<double>(four.wpbBits),
                2.0 * static_cast<double>(two.wpbBits), 1.0);
    EXPECT_NEAR(static_cast<double>(four.squashLogBits),
                2.0 * static_cast<double>(two.squashLogBits), 1.0);
    // The constant part does not change with N/M/P.
    EXPECT_EQ(two.constantBits(), four.constantBits());
}

TEST(StorageModel, RgidWidthAffectsEverything)
{
    StorageParams params;
    params.rgidBits = 8;
    const auto wide = computeStorage(params);
    const auto narrow = computeStorage(StorageParams{});
    EXPECT_GT(wide.constantBits(), narrow.constantBits());
    EXPECT_GT(wide.squashLogBits, narrow.squashLogBits);
}
