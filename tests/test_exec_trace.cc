/**
 * Binary execution traces (mssr-trace-v1): lossless round-trips
 * through the on-disk container, replay that reproduces the detailed
 * core's statistics bit-for-bit, and adversarial inputs -- every
 * truncation length and every flipped byte must raise SerializeError,
 * never crash and never hand back partially-validated state. Mirrors
 * the checkpoint corruption suite in test_serialize.cc.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "driver/sim_runner.hh"
#include "isa/assembler.hh"
#include "sim/exec_trace.hh"
#include "workloads/registry.hh"

using namespace mssr;

namespace
{

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

workloads::WorkloadScale
testScale()
{
    workloads::WorkloadScale scale;
    scale.graphScale = 6;
    scale.iterations = 60;
    return scale;
}

/** A small branchy capture exercising every control-record shape. */
ExecTrace
sampleTrace()
{
    // Conditional branches both ways, a JAL, a taken JALR (the only
    // explicit-target record shape) and initialised data.
    isa::Program prog;
    prog.allocData("arena", 64);
    isa::assemble(prog, R"(
        la s2, arena
        li t0, 0
        li t1, 5
    loop:
        andi t2, t0, 1
        beqz t2, even
        sd t0, 0(s2)
    even:
        call helper
        addi t0, t0, 1
        blt t0, t1, loop
        halt
    helper:
        addi a0, a0, 7
        ret
    )");
    // Pre-initialised bytes so the DATA section is non-trivial.
    prog.initBytes(prog.label("arena"), {1, 2, 3, 4, 5, 6, 7, 8});
    return captureTrace(prog, 0, "sample");
}

} // namespace

TEST(ExecTrace, CaptureRoundTripsThroughDisk)
{
    const ExecTrace trace = sampleTrace();
    EXPECT_TRUE(trace.halted);
    EXPECT_GT(trace.controls.size(), 10u);
    EXPECT_FALSE(trace.dataChunks.empty());

    const std::string path = tempPath("trace_roundtrip.trace");
    writeTrace(path, trace);
    const ExecTrace back = readTrace(path);
    std::filesystem::remove(path);
    EXPECT_TRUE(back == trace);
}

TEST(ExecTrace, WorkloadCaptureRoundTripsAndVerifies)
{
    const isa::Program prog =
        workloads::buildWorkload("bfs", testScale());
    const ExecTrace trace = captureTrace(prog, 5000, "bfs");
    EXPECT_EQ(trace.instsExecuted, 5000u);
    EXPECT_EQ(trace.programHash, prog.hash());

    const std::string path = tempPath("trace_bfs.trace");
    writeTrace(path, trace);
    TraceReplaySource replay(path);
    std::filesystem::remove(path);
    EXPECT_TRUE(replay.trace() == trace);
    EXPECT_EQ(replay.program().hash(), prog.hash());
    EXPECT_NO_THROW(replay.verify());
}

TEST(ExecTrace, ReplayedProgramReproducesDetailedStats)
{
    // The tentpole guarantee: simulating the reconstructed program
    // yields the same detailed-core results as the original.
    const isa::Program prog =
        workloads::buildWorkload("nested-mispred", testScale());
    const ExecTrace trace = captureTrace(prog, 0, "nested-mispred");
    const isa::Program rebuilt = trace.reconstructProgram();

    SimConfig cfg;
    cfg.reuseKind = ReuseKind::Rgid;
    cfg.maxInsts = 20000;
    const RunResult a = runSim(prog, cfg);
    const RunResult b = runSim(rebuilt, cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.insts, b.insts);
    EXPECT_EQ(a.archRegs, b.archRegs);
    EXPECT_TRUE(a.stats.scalars() == b.stats.scalars());
}

TEST(ExecTrace, EveryTruncationThrowsCleanly)
{
    const ExecTrace trace = sampleTrace();
    const std::string path = tempPath("trace_trunc.trace");
    writeTrace(path, trace);
    const std::vector<std::uint8_t> img = SerialReader::readFile(path);

    auto writeRaw = [&](const std::vector<std::uint8_t> &data) {
        std::ofstream os(path, std::ios::binary);
        os.write(reinterpret_cast<const char *>(data.data()),
                 static_cast<std::streamsize>(data.size()));
    };
    for (std::size_t n = 0; n < img.size(); ++n) {
        writeRaw({img.begin(), img.begin() + n});
        EXPECT_THROW(readTrace(path), SerializeError)
            << "truncated to " << n << " of " << img.size() << " bytes";
    }
    std::filesystem::remove(path);
}

TEST(ExecTrace, EveryFlippedByteThrowsCleanly)
{
    // Any single corrupted byte -- magic, version, tag, length,
    // payload or CRC -- must surface as SerializeError before any
    // state escapes the reader.
    const ExecTrace trace = sampleTrace();
    const std::string path = tempPath("trace_flip.trace");
    writeTrace(path, trace);
    const std::vector<std::uint8_t> img = SerialReader::readFile(path);

    for (std::size_t i = 0; i < img.size(); ++i) {
        std::vector<std::uint8_t> bad = img;
        bad[i] ^= 0x40;
        std::ofstream os(path, std::ios::binary);
        os.write(reinterpret_cast<const char *>(bad.data()),
                 static_cast<std::streamsize>(bad.size()));
        os.close();
        EXPECT_THROW(readTrace(path), SerializeError)
            << "flipped byte " << i;
    }
    std::filesystem::remove(path);
}

TEST(ExecTrace, HandEditedProgramImageFailsTheHashCheck)
{
    // A structurally valid trace whose code no longer matches the
    // recorded hash must be rejected at reconstruction: replaying an
    // edited program against the captured stream would be garbage.
    ExecTrace trace = sampleTrace();
    trace.code[1].imm ^= 1;
    EXPECT_THROW(trace.reconstructProgram(), SerializeError);
}

TEST(ExecTrace, DivergentDynamicStreamFailsVerify)
{
    ExecTrace trace = sampleTrace();
    const isa::Program prog = trace.reconstructProgram();

    ExecTrace wrongCount = trace;
    wrongCount.instsExecuted += 1;
    EXPECT_THROW(wrongCount.verify(prog), SerializeError);

    ExecTrace wrongOutcome = trace;
    ASSERT_FALSE(wrongOutcome.controls.empty());
    wrongOutcome.controls.back().taken =
        !wrongOutcome.controls.back().taken;
    EXPECT_THROW(wrongOutcome.verify(prog), SerializeError);

    EXPECT_NO_THROW(trace.verify(prog));
}

TEST(ExecTrace, MissingFileThrows)
{
    EXPECT_THROW(readTrace(tempPath("no_such.trace")), SerializeError);
}
