/**
 * Parameterized co-simulation sweeps (TEST_P): the architectural-
 * equivalence invariant must hold for every combination of reuse
 * scheme, structure sizing and workload family. These are the
 * property-style tests of the master invariant: squash reuse never
 * changes architectural results.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "cosim_triage.hh"
#include "driver/sim_runner.hh"
#include "sim/func_emu.hh"
#include "workloads/registry.hh"

using namespace mssr;

namespace
{

void
expectMatch(const isa::Program &prog, const SimConfig &cfg,
            const std::string &what)
{
    Memory refMem;
    FuncEmu emu(prog, refMem);
    emu.run(50'000'000);
    ASSERT_TRUE(emu.halted()) << what;

    SimConfig traced = cfg;
    CosimTriage triage(what, traced); // dumps last events on divergence
    Memory o3Mem;
    const RunResult r = runSim(prog, traced, &o3Mem);
    ASSERT_TRUE(r.halted) << what;
    EXPECT_EQ(r.insts, emu.instret()) << what;
    for (unsigned reg = 0; reg < NumArchRegs; ++reg)
        ASSERT_EQ(r.archRegs[reg], emu.reg(static_cast<ArchReg>(reg)))
            << what << " reg " << isa::regName(static_cast<ArchReg>(reg));
    ASSERT_TRUE(o3Mem.equals(refMem)) << what;
}

} // namespace

// ---------------------------------------------------------------------
// Sweep 1: RGID structure sizing on a reuse-heavy workload.

class RgidSizingCosim
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(RgidSizingCosim, ArchitecturallyInvisible)
{
    const auto [streams, entries] = GetParam();
    workloads::WorkloadScale scale;
    scale.iterations = 250;
    scale.graphScale = 6;
    const isa::Program prog =
        workloads::buildWorkload("nested-mispred", scale);
    expectMatch(prog, rgidConfig(streams, entries),
                "rgid " + std::to_string(streams) + "x" +
                    std::to_string(entries));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RgidSizingCosim,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(16u, 64u, 128u)));

// ---------------------------------------------------------------------
// Sweep 2: Register Integration table geometries.

class RiSizingCosim
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(RiSizingCosim, ArchitecturallyInvisible)
{
    const auto [sets, ways] = GetParam();
    workloads::WorkloadScale scale;
    scale.iterations = 250;
    const isa::Program prog =
        workloads::buildWorkload("linear-mispred", scale);
    expectMatch(prog, regIntConfig(sets, ways),
                "ri " + std::to_string(sets) + "x" + std::to_string(ways));
}

INSTANTIATE_TEST_SUITE_P(Sizes, RiSizingCosim,
                         ::testing::Combine(::testing::Values(16u, 64u,
                                                              128u),
                                            ::testing::Values(1u, 2u, 4u)));

// ---------------------------------------------------------------------
// Sweep 3: every workload under every reuse scheme.

class WorkloadSchemeCosim
    : public ::testing::TestWithParam<std::tuple<std::string, ReuseKind>>
{
};

TEST_P(WorkloadSchemeCosim, ArchitecturallyInvisible)
{
    const auto [name, kind] = GetParam();
    workloads::WorkloadScale scale;
    scale.iterations = 200;
    scale.graphScale = 6;
    const isa::Program prog = workloads::buildWorkload(name, scale);
    SimConfig cfg;
    cfg.reuseKind = kind;
    expectMatch(prog, cfg, name + "/" + toString(kind));
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadSchemeCosim,
    ::testing::Combine(::testing::Values("astar", "gobmk", "omnetpp",
                                         "leela", "xz", "sjeng",
                                         "exchange2", "bfs", "cc", "sssp",
                                         "tc", "pr", "bc"),
                       ::testing::Values(ReuseKind::None, ReuseKind::Rgid,
                                         ReuseKind::RegInt)),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" +
               toString(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Sweep 4: core-structure sizing stress under reuse.

class CoreSizingCosim : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CoreSizingCosim, ArchitecturallyInvisible)
{
    const unsigned rob = GetParam();
    workloads::WorkloadScale scale;
    scale.iterations = 200;
    const isa::Program prog =
        workloads::buildWorkload("nested-mispred", scale);
    SimConfig cfg = rgidConfig(4, 64);
    cfg.core.robEntries = rob;
    cfg.core.physRegs = rob; // keep preg count matched to the ROB
    expectMatch(prog, cfg, "rob " + std::to_string(rob));
}

INSTANTIATE_TEST_SUITE_P(Robs, CoreSizingCosim,
                         ::testing::Values(64u, 128u, 256u));

// ---------------------------------------------------------------------
// Sweep 5: predictor choice changes timing, never results.

class PredictorCosim
    : public ::testing::TestWithParam<BranchPredictorKind>
{
};

TEST_P(PredictorCosim, ArchitecturallyInvisible)
{
    workloads::WorkloadScale scale;
    scale.iterations = 200;
    const isa::Program prog = workloads::buildWorkload("gobmk", scale);
    SimConfig cfg = rgidConfig(2, 64);
    cfg.core.predictor = GetParam();
    expectMatch(prog, cfg, toString(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Kinds, PredictorCosim,
                         ::testing::Values(BranchPredictorKind::Bimodal,
                                           BranchPredictorKind::Gshare,
                                           BranchPredictorKind::TageScL),
                         [](const auto &info) {
                             std::string name = toString(info.param);
                             for (auto &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });
