#include <gtest/gtest.h>

#include "core/issue_queue.hh"

using namespace mssr;

namespace
{

DynInstPtr
makeInst(SeqNum seq)
{
    auto inst = std::make_shared<DynInst>();
    inst->seq = seq;
    return inst;
}

} // namespace

TEST(IssueQueue, SelectsOldestReadyFirst)
{
    IssueQueue iq(8);
    auto a = makeInst(1), b = makeInst(2), c = makeInst(3);
    iq.insert(a);
    iq.insert(b);
    iq.insert(c);
    // Only b and c ready; width 1 picks b (oldest ready).
    auto picked = iq.selectReady(
        1, [&](const DynInstPtr &inst) { return inst->seq >= 2; });
    ASSERT_EQ(picked.size(), 1u);
    EXPECT_EQ(picked[0]->seq, 2u);
    EXPECT_EQ(iq.size(), 2u);
    EXPECT_FALSE(b->inIq);
    EXPECT_TRUE(a->inIq);
}

TEST(IssueQueue, WidthLimitsSelection)
{
    IssueQueue iq(8);
    for (SeqNum s = 1; s <= 5; ++s)
        iq.insert(makeInst(s));
    auto picked =
        iq.selectReady(3, [](const DynInstPtr &) { return true; });
    EXPECT_EQ(picked.size(), 3u);
    EXPECT_EQ(picked[0]->seq, 1u);
    EXPECT_EQ(picked[2]->seq, 3u);
}

TEST(IssueQueue, CapacityEnforced)
{
    IssueQueue iq(1);
    iq.insert(makeInst(1));
    EXPECT_TRUE(iq.full());
    EXPECT_THROW(iq.insert(makeInst(2)), SimPanic);
}

TEST(IssueQueue, SquashRemovesYounger)
{
    IssueQueue iq(8);
    for (SeqNum s = 1; s <= 4; ++s)
        iq.insert(makeInst(s));
    iq.squashAfter(2);
    EXPECT_EQ(iq.size(), 2u);
    auto picked =
        iq.selectReady(8, [](const DynInstPtr &) { return true; });
    ASSERT_EQ(picked.size(), 2u);
    EXPECT_EQ(picked[1]->seq, 2u);
}

TEST(IssueQueue, NoneReadyNoneSelected)
{
    IssueQueue iq(4);
    iq.insert(makeInst(1));
    auto picked =
        iq.selectReady(4, [](const DynInstPtr &) { return false; });
    EXPECT_TRUE(picked.empty());
    EXPECT_EQ(iq.size(), 1u);
}
