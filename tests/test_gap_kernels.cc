/**
 * Validates the assembly GAP kernels against their C++ reference
 * implementations: result arrays in simulated memory must match the
 * reference exactly (same fixed-point arithmetic, same traversal
 * order). Functional-emulator runs validate the kernels; O3 runs with
 * squash reuse validate the whole stack end to end.
 */

#include <gtest/gtest.h>

#include "driver/sim_runner.hh"
#include "sim/func_emu.hh"
#include "workloads/gap_kernels.hh"
#include "workloads/gap_reference.hh"
#include "workloads/graph.hh"

using namespace mssr;
using namespace mssr::workloads;

namespace
{

Graph
testGraph(unsigned scale = 7)
{
    return makeKronecker(scale, 8, 99, true);
}

/** Runs @p prog functionally and returns the final memory. */
std::unique_ptr<Memory>
runFunctional(const isa::Program &prog)
{
    auto mem = std::make_unique<Memory>();
    FuncEmu emu(prog, *mem);
    emu.run(80'000'000);
    EXPECT_TRUE(emu.halted());
    return mem;
}

std::vector<std::int64_t>
readArray(const Memory &mem, Addr base, std::size_t n)
{
    std::vector<std::int64_t> out(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::int64_t>(mem.read64(base + 8 * i));
    return out;
}

} // namespace

TEST(GapKernels, BfsMatchesReference)
{
    const Graph g = testGraph();
    isa::Program prog = makeBfs(g);
    auto mem = runFunctional(prog);
    EXPECT_EQ(readArray(*mem, prog.label("depth"), g.numVertices),
              bfsRef(g));
}

TEST(GapKernels, DirectionOptimizingBfsMatchesReference)
{
    // Both BFS variants must compute identical depths (canonical BFS
    // levels are strategy independent).
    const Graph g = testGraph(8);
    isa::Program prog = makeBfsDirectionOptimizing(g);
    auto mem = runFunctional(prog);
    EXPECT_EQ(readArray(*mem, prog.label("depth"), g.numVertices),
              bfsRef(g));
}

TEST(GapKernels, DirectionOptimizingBfsThresholdSweep)
{
    const Graph g = testGraph(7);
    const auto expected = bfsRef(g);
    // Divisor 1 ~ always top-down-ish; huge divisor ~ always bottom-up.
    for (unsigned divisor : {1u, 4u, 64u}) {
        isa::Program prog = makeBfsDirectionOptimizing(g, divisor);
        auto mem = runFunctional(prog);
        EXPECT_EQ(readArray(*mem, prog.label("depth"), g.numVertices),
                  expected)
            << "divisor " << divisor;
    }
}

TEST(GapKernels, DirectionOptimizingBfsOnO3WithReuse)
{
    const Graph g = testGraph(6);
    isa::Program prog = makeBfsDirectionOptimizing(g);
    Memory mem;
    const RunResult r = runSim(prog, rgidConfig(4, 64), &mem);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(readArray(mem, prog.label("depth"), g.numVertices),
              bfsRef(g));
}

TEST(GapKernels, CcMatchesReference)
{
    const Graph g = testGraph();
    isa::Program prog = makeCc(g);
    auto mem = runFunctional(prog);
    EXPECT_EQ(readArray(*mem, prog.label("label"), g.numVertices), ccRef(g));
}

TEST(GapKernels, PrMatchesReference)
{
    const Graph g = testGraph();
    isa::Program prog = makePr(g, 3);
    auto mem = runFunctional(prog);
    EXPECT_EQ(readArray(*mem, prog.label("rank"), g.numVertices),
              prRef(g, 3));
}

TEST(GapKernels, SsspMatchesReference)
{
    const Graph g = testGraph();
    isa::Program prog = makeSssp(g, 32);
    auto mem = runFunctional(prog);
    EXPECT_EQ(readArray(*mem, prog.label("dist"), g.numVertices),
              ssspRef(g, 32));
}

TEST(GapKernels, TcMatchesReference)
{
    const Graph g = testGraph();
    isa::Program prog = makeTc(g);
    auto mem = runFunctional(prog);
    EXPECT_EQ(static_cast<std::int64_t>(
                  mem->read64(prog.label("tricount"))),
              tcRef(g));
    EXPECT_GT(tcRef(g), 0); // Kronecker graphs have triangles
}

TEST(GapKernels, BcMatchesReference)
{
    const Graph g = testGraph(6);
    isa::Program prog = makeBc(g, 2);
    auto mem = runFunctional(prog);
    EXPECT_EQ(readArray(*mem, prog.label("bc"), g.numVertices), bcRef(g, 2));
}

TEST(GapKernels, BfsOnUniformGraph)
{
    const Graph g = makeUniform(7, 8, 7, true);
    isa::Program prog = makeBfs(g);
    auto mem = runFunctional(prog);
    EXPECT_EQ(readArray(*mem, prog.label("depth"), g.numVertices),
              bfsRef(g));
}

// End-to-end: the O3 core with each reuse scheme must produce exactly
// the reference results for a graph workload.
TEST(GapKernels, BfsOnO3AllSchemes)
{
    const Graph g = testGraph(6);
    isa::Program prog = makeBfs(g);
    const auto expected = bfsRef(g);
    for (const SimConfig &cfg :
         {baselineConfig(), rgidConfig(4, 64), regIntConfig(64, 4)}) {
        Memory mem;
        const RunResult r = runSim(prog, cfg, &mem);
        ASSERT_TRUE(r.halted);
        EXPECT_EQ(readArray(mem, prog.label("depth"), g.numVertices),
                  expected)
            << "scheme " << toString(cfg.reuseKind);
    }
}

TEST(GapKernels, CcOnO3WithReuse)
{
    const Graph g = testGraph(6);
    isa::Program prog = makeCc(g);
    Memory mem;
    const RunResult r = runSim(prog, rgidConfig(4, 64), &mem);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(readArray(mem, prog.label("label"), g.numVertices), ccRef(g));
}

TEST(GapKernels, SsspOnO3WithReuse)
{
    const Graph g = testGraph(6);
    isa::Program prog = makeSssp(g, 32);
    Memory mem;
    const RunResult r = runSim(prog, rgidConfig(2, 64), &mem);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(readArray(mem, prog.label("dist"), g.numVertices),
              ssspRef(g, 32));
}
