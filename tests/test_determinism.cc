/**
 * Determinism: the simulator must be bit-reproducible -- identical
 * configurations produce identical cycle counts, statistics and
 * architectural results. The benchmark harness and EXPERIMENTS.md
 * rely on this.
 */

#include <gtest/gtest.h>

#include "driver/sim_runner.hh"
#include "workloads/registry.hh"

using namespace mssr;

namespace
{

void
expectIdentical(const RunResult &a, const RunResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.insts, b.insts) << what;
    EXPECT_EQ(a.archRegs, b.archRegs) << what;
    for (const auto &[key, value] : a.stats.scalars())
        EXPECT_EQ(value, b.stats.get(key)) << what << " stat " << key;
}

} // namespace

TEST(Determinism, RepeatedRunsAreIdentical)
{
    workloads::WorkloadScale scale;
    scale.iterations = 400;
    scale.graphScale = 7;
    for (const std::string name : {"gobmk", "bfs", "xz"}) {
        const isa::Program prog = workloads::buildWorkload(name, scale);
        for (const SimConfig &cfg :
             {baselineConfig(), rgidConfig(4, 64), regIntConfig(64, 4)}) {
            const RunResult first = runSim(prog, cfg);
            const RunResult second = runSim(prog, cfg);
            expectIdentical(first, second,
                            name + "/" + toString(cfg.reuseKind));
        }
    }
}

TEST(Determinism, RebuiltWorkloadIsIdentical)
{
    workloads::WorkloadScale scale;
    scale.iterations = 300;
    const isa::Program a = workloads::buildWorkload("astar", scale);
    const isa::Program b = workloads::buildWorkload("astar", scale);
    EXPECT_EQ(a.numInsts(), b.numInsts());
    for (Addr pc = a.codeBase(); pc < a.codeEnd(); pc += InstBytes)
        ASSERT_EQ(a.instAt(pc), b.instAt(pc)) << std::hex << pc;
    expectIdentical(runSim(a, rgidConfig(2, 64)),
                    runSim(b, rgidConfig(2, 64)), "rebuilt astar");
}
