/**
 * Determinism: the simulator must be bit-reproducible -- identical
 * configurations produce identical cycle counts, statistics and
 * architectural results. The benchmark harness and EXPERIMENTS.md
 * rely on this.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/batch_runner.hh"
#include "driver/sim_runner.hh"
#include "workloads/registry.hh"

using namespace mssr;

namespace
{

void
expectIdentical(const RunResult &a, const RunResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.insts, b.insts) << what;
    EXPECT_EQ(a.archRegs, b.archRegs) << what;
    EXPECT_TRUE(a.cpi == b.cpi) << what << " CPI stack";
    EXPECT_TRUE(a.funnel == b.funnel) << what << " reuse funnel";
    for (const auto &[key, value] : a.stats.scalars())
        EXPECT_EQ(value, b.stats.get(key)) << what << " stat " << key;
}

} // namespace

TEST(Determinism, RepeatedRunsAreIdentical)
{
    workloads::WorkloadScale scale;
    scale.iterations = 400;
    scale.graphScale = 7;
    for (const std::string name : {"gobmk", "bfs", "xz"}) {
        const isa::Program prog = workloads::buildWorkload(name, scale);
        for (const SimConfig &cfg :
             {baselineConfig(), rgidConfig(4, 64), regIntConfig(64, 4)}) {
            const RunResult first = runSim(prog, cfg);
            const RunResult second = runSim(prog, cfg);
            expectIdentical(first, second,
                            name + "/" + toString(cfg.reuseKind));
        }
    }
}

TEST(Determinism, RebuiltWorkloadIsIdentical)
{
    workloads::WorkloadScale scale;
    scale.iterations = 300;
    const isa::Program a = workloads::buildWorkload("astar", scale);
    const isa::Program b = workloads::buildWorkload("astar", scale);
    EXPECT_EQ(a.numInsts(), b.numInsts());
    for (Addr pc = a.codeBase(); pc < a.codeEnd(); pc += InstBytes)
        ASSERT_EQ(a.instAt(pc), b.instAt(pc)) << std::hex << pc;
    expectIdentical(runSim(a, rgidConfig(2, 64)),
                    runSim(b, rgidConfig(2, 64)), "rebuilt astar");
}

TEST(Determinism, AccountingIdenticalAcrossWorkerCounts)
{
    // The CPI stack, funnel and per-interval sub-stacks are part of
    // the deterministic result surface: a 4-worker batch must produce
    // byte-identical accounting to a sequential one, including with
    // interval sampling enabled.
    workloads::WorkloadScale scale;
    scale.iterations = 300;
    scale.graphScale = 7;
    const isa::Program mispred =
        workloads::buildWorkload("nested-mispred", scale);
    const isa::Program bfs = workloads::buildWorkload("bfs", scale);

    std::vector<BatchJob> jobs;
    for (const isa::Program *prog : {&mispred, &bfs}) {
        for (SimConfig cfg :
             {baselineConfig(), rgidConfig(4, 64), regIntConfig(64, 4)}) {
            cfg.statsInterval = 400;
            cfg.profiling = true;
            jobs.push_back({"job", prog, cfg, {}});
        }
    }

    const std::vector<RunResult> serial = BatchRunner(1).run(jobs);
    const std::vector<RunResult> parallel = BatchRunner(4).run(jobs);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const RunResult &a = serial[i];
        const RunResult &b = parallel[i];
        expectIdentical(a, b, "job " + std::to_string(i));
        ASSERT_EQ(a.intervals.size(), b.intervals.size()) << i;
        ASSERT_GT(a.intervals.size(), 0u) << i;
        for (std::size_t k = 0; k < a.intervals.size(); ++k) {
            EXPECT_EQ(a.intervals[k].cycleEnd, b.intervals[k].cycleEnd);
            EXPECT_EQ(a.intervals[k].cpiSlots, b.intervals[k].cpiSlots)
                << "job " << i << " interval " << k;
        }

        // The per-PC profile is part of the same surface: identical
        // record-by-record and byte-identical in its JSON export.
        EXPECT_TRUE(a.profile == b.profile) << "job " << i << " profile";
        EXPECT_FALSE(a.profile.empty()) << "job " << i;
        std::ostringstream ja, jb;
        writeJson(ja, a.profile);
        writeJson(jb, b.profile);
        EXPECT_EQ(ja.str(), jb.str()) << "job " << i << " profile JSON";
    }
}
