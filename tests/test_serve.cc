/**
 * Simulation-as-a-service engine (driver/serve_core.hh) and its
 * substrates: the mssr-serve-v1 frame codec (common/frame.hh), the
 * mssr-serve-journal-v1 crash journal (common/serve_journal.hh), the
 * strict job-spec parser, and the ServeCore request dispatcher --
 * including the end-to-end determinism contracts (double-submit
 * byte-identity, journal resume serving exactly the not-yet-finished
 * jobs).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/frame.hh"
#include "common/mini_json.hh"
#include "common/serve_journal.hh"
#include "driver/serve_core.hh"

using namespace mssr;
using minijson::JsonValue;

namespace
{

JsonValue
parseJson(const std::string &text)
{
    return minijson::JsonParser(text).parse();
}

std::string
strField(const JsonValue &v, const std::string &key)
{
    const auto it = v.object.find(key);
    return it != v.object.end() ? it->second.string : std::string();
}

double
numField(const JsonValue &v, const std::string &key)
{
    const auto it = v.object.find(key);
    return it != v.object.end() ? it->second.number : -1.0;
}

bool
okReply(const JsonValue &v)
{
    const auto it = v.object.find("ok");
    return it != v.object.end() && it->second.kind == JsonValue::Bool &&
           it->second.number != 0.0;
}

/** A scratch directory that cleans up after the test. */
struct TempDir
{
    std::filesystem::path path;

    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("mssr_serve_test_" + std::to_string(getpid()) + "_" +
                std::to_string(counter()++));
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }

    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }

    static int &
    counter()
    {
        static int n = 0;
        return n;
    }
};

// ---------------------------------------------------------------- frame

TEST(Frame, RoundTripsOverSocketpair)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const std::string msgs[] = {"{}", std::string(100000, 'x'), ""};
    for (const std::string &msg : msgs)
        writeFrame(fds[0], msg);
    std::string got;
    for (const std::string &msg : msgs) {
        ASSERT_TRUE(readFrame(fds[1], got));
        EXPECT_EQ(got, msg);
    }
    close(fds[0]);
    // Clean EOF is false, not an exception.
    EXPECT_FALSE(readFrame(fds[1], got));
    close(fds[1]);
}

TEST(Frame, TornStreamThrows)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    // A length header promising 100 bytes, then EOF mid-payload.
    const unsigned char hdr[4] = {100, 0, 0, 0};
    ASSERT_EQ(write(fds[0], hdr, 4), 4);
    ASSERT_EQ(write(fds[0], "abc", 3), 3);
    close(fds[0]);
    std::string got;
    EXPECT_THROW(readFrame(fds[1], got), FrameError);
    close(fds[1]);
}

TEST(Frame, OversizeFrameThrows)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const unsigned char hdr[4] = {0xff, 0xff, 0xff, 0xff};
    ASSERT_EQ(write(fds[0], hdr, 4), 4);
    std::string got;
    EXPECT_THROW(readFrame(fds[1], got), FrameError);
    close(fds[0]);
    close(fds[1]);
}

TEST(Frame, JsonEscapeCoversControlAndQuotes)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("x\n\t"), "x\\n\\t");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

// ------------------------------------------------------------- job specs

TEST(ServeJobSpec, ParsesDefaultsAndRoundTripsCanonically)
{
    const ServeJobSpec s =
        parseJobSpec(parseJson("{\"workload\": \"nested-mispred\"}"));
    EXPECT_EQ(s.name, "nested-mispred"); // name defaults to workload
    EXPECT_EQ(s.scheme, "rgid");
    EXPECT_EQ(s.predictor, "tage");
    EXPECT_EQ(s.seed, 42u);

    // canonical -> parse -> canonical is a fixed point.
    const std::string canon = canonicalJobSpec(s);
    const ServeJobSpec again = parseJobSpec(parseJson(canon));
    EXPECT_EQ(canonicalJobSpec(again), canon);
}

TEST(ServeJobSpec, RejectsUnknownKeysAndBadTypes)
{
    EXPECT_THROW(parseJobSpec(parseJson(
                     "{\"workload\": \"x\", \"turbo\": true}")),
                 std::invalid_argument);
    EXPECT_THROW(parseJobSpec(parseJson("{\"workload\": 3}")),
                 std::invalid_argument);
    EXPECT_THROW(parseJobSpec(parseJson(
                     "{\"workload\": \"x\", \"iters\": -1}")),
                 std::invalid_argument);
    EXPECT_THROW(parseJobSpec(parseJson(
                     "{\"workload\": \"x\", \"iters\": 1.5}")),
                 std::invalid_argument);
    EXPECT_THROW(parseJobSpec(parseJson("{}")), std::invalid_argument);
    EXPECT_THROW(parseJobSpec(parseJson(
                     "{\"workload\": \"x\", \"scheme\": \"magic\"}")),
                 std::invalid_argument);
}

TEST(ServeJobSpec, ValidateCoversRegistryAndExclusionMatrix)
{
    ServeJobSpec s;
    s.workload = "no-such-workload";
    EXPECT_NE(validateJobSpec(s), "");

    s.workload = "nested-mispred";
    s.name = s.workload;
    EXPECT_EQ(validateJobSpec(s), "");

    // warm_bpu needs a fast-forward prefix to warm from.
    s.warmBpu = true;
    EXPECT_NE(validateJobSpec(s), "");
    s.fastForward = 1000;
    EXPECT_EQ(validateJobSpec(s), "");

    // The sampled exclusion matrix: sampling fast-forwards itself.
    s.samplePeriod = 10000;
    s.sampleWindow = 2000;
    EXPECT_NE(validateJobSpec(s), "");
    s.warmBpu = false;
    s.fastForward = 0;
    EXPECT_EQ(validateJobSpec(s), "");
    s.sampleWindow = 20001; // window > period
    EXPECT_NE(validateJobSpec(s), "");
}

TEST(ServeJobSpec, ConfigMappingMatchesMssrRun)
{
    ServeJobSpec s;
    s.workload = "nested-mispred";
    s.scheme = "regint";
    s.predictor = "gshare";
    s.funcTier = "interp";
    s.streams = 8;
    s.entries = 64;
    s.sets = 128;
    s.ways = 2;
    const SimConfig cfg = specConfig(s);
    EXPECT_EQ(cfg.reuseKind, ReuseKind::RegInt);
    EXPECT_EQ(cfg.core.predictor, BranchPredictorKind::Gshare);
    EXPECT_EQ(cfg.funcTier, FuncTier::Interpreter);
    EXPECT_EQ(cfg.reuse.numStreams, 8u);
    EXPECT_EQ(cfg.reuse.squashLogEntriesPerStream, 64u);
    EXPECT_EQ(cfg.reuse.wpbEntriesPerStream, 16u); // entries/4
    EXPECT_EQ(cfg.regint.sets, 128u);
    EXPECT_EQ(cfg.regint.ways, 2u);
}

// -------------------------------------------------------------- journal

TEST(ServeJournal, RoundTripsEventsAndRawRecordText)
{
    TempDir dir;
    const std::string path = dir.file("journal.jsonl");
    // The record text must survive byte-for-byte: 0.30000000000000004
    // would re-serialize differently through a double round-trip.
    const std::string record =
        "{\"name\": \"a b\", \"ipc\": 0.30000000000000004}";
    {
        ServeJournal j;
        ASSERT_TRUE(j.open(path));
        j.appendSubmit(1, "lbl", {"{\"workload\": \"w\"}"});
        j.appendDone(1, 0, record);
        j.appendCancel(2);
        j.appendFail(3, "boom");
    }
    const auto events = ServeJournal::load(path);
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].event, "submit");
    EXPECT_EQ(events[0].batch, 1u);
    EXPECT_EQ(events[0].label, "lbl");
    ASSERT_EQ(events[0].jobs.size(), 1u);
    EXPECT_EQ(events[1].event, "done");
    EXPECT_EQ(events[1].job, 0u);
    EXPECT_EQ(events[1].record, record);
    EXPECT_EQ(events[2].event, "cancel");
    EXPECT_EQ(events[2].batch, 2u);
    EXPECT_EQ(events[3].event, "fail");
    EXPECT_EQ(events[3].message, "boom");
}

TEST(ServeJournal, ToleratesTornFinalLineOnly)
{
    TempDir dir;
    const std::string path = dir.file("journal.jsonl");
    {
        ServeJournal j;
        ASSERT_TRUE(j.open(path));
        j.appendCancel(1);
    }
    // A crash mid-append leaves a torn final line: legal, dropped.
    {
        std::ofstream f(path, std::ios::app);
        f << "{\"event\": \"cancel\", \"bat";
    }
    EXPECT_EQ(ServeJournal::load(path).size(), 1u);

    // The same garbage mid-file is corruption, not a torn tail.
    std::filesystem::remove(path);
    {
        std::ofstream f(path);
        f << "{\"schema\": \"mssr-serve-journal-v1\"}\n"
          << "{\"event\": \"can\n" // corrupt, NOT final
          << "{\"event\": \"cancel\", \"batch\": 2}\n";
    }
    EXPECT_THROW(ServeJournal::load(path), std::runtime_error);
}

TEST(ServeJournal, RejectsForeignSchema)
{
    TempDir dir;
    const std::string path = dir.file("journal.jsonl");
    {
        std::ofstream f(path);
        f << "{\"schema\": \"something-else\"}\n";
    }
    EXPECT_THROW(ServeJournal::load(path), std::runtime_error);
}

// ------------------------------------------------------------ ServeCore

ServeOptions
queueOnlyOptions()
{
    // No scheduler: requests manipulate the queue deterministically.
    ServeOptions o;
    o.startScheduler = false;
    return o;
}

TEST(ServeCore, SubmitStatusCancelLifecycle)
{
    ServeCore core(queueOnlyOptions());
    const JsonValue sub = parseJson(core.handleRequest(
        "{\"type\": \"submit\", \"label\": \"sweep\", \"jobs\": "
        "[{\"workload\": \"nested-mispred\", \"iters\": 50}]}"));
    ASSERT_TRUE(okReply(sub));
    EXPECT_EQ(numField(sub, "batch"), 1.0);
    EXPECT_EQ(numField(sub, "jobs"), 1.0);
    EXPECT_EQ(core.pendingJobs(), 1u);

    const JsonValue st =
        parseJson(core.handleRequest("{\"type\": \"status\"}"));
    ASSERT_TRUE(okReply(st));
    EXPECT_EQ(numField(st, "queue_depth"), 1.0);
    ASSERT_EQ(st.object.at("batches").array.size(), 1u);
    EXPECT_EQ(strField(st.object.at("batches").array[0], "state"),
              "queued");

    const JsonValue cancel = parseJson(core.handleRequest(
        "{\"type\": \"cancel\", \"batch\": 1}"));
    ASSERT_TRUE(okReply(cancel));
    EXPECT_EQ(core.pendingJobs(), 0u);
    const JsonValue again = parseJson(core.handleRequest(
        "{\"type\": \"cancel\", \"batch\": 1}"));
    EXPECT_FALSE(okReply(again));
    EXPECT_EQ(strField(again, "error"), "not_cancellable");
}

TEST(ServeCore, StructuredErrorsNeverThrow)
{
    ServeCore core(queueOnlyOptions());
    const struct
    {
        const char *request;
        const char *code;
    } cases[] = {
        {"not json at all", "bad_request"},
        {"[1, 2]", "bad_request"},
        {"{\"type\": \"frobnicate\"}", "unknown_type"},
        {"{\"type\": \"submit\", \"jobs\": []}", "bad_request"},
        {"{\"type\": \"submit\", \"jobs\": [{\"workload\": \"nope\"}]}",
         "invalid_job"},
        {"{\"type\": \"submit\", \"jobs\": [{\"workload\": "
         "\"nested-mispred\", \"warm_bpu\": true}]}",
         "invalid_job"},
        {"{\"type\": \"status\", \"batch\": 99}", "unknown_batch"},
        {"{\"type\": \"results\", \"batch\": 99}", "unknown_batch"},
        {"{\"type\": \"results\"}", "bad_request"},
    };
    for (const auto &c : cases) {
        const JsonValue reply = parseJson(core.handleRequest(c.request));
        EXPECT_FALSE(okReply(reply)) << c.request;
        EXPECT_EQ(strField(reply, "error"), c.code) << c.request;
    }
    EXPECT_EQ(core.pendingJobs(), 0u); // nothing slipped into the queue
}

TEST(ServeCore, QueueFullAndDrainingBackpressure)
{
    ServeOptions o = queueOnlyOptions();
    o.queueMax = 2;
    ServeCore core(o);
    const std::string two =
        "{\"type\": \"submit\", \"jobs\": ["
        "{\"workload\": \"nested-mispred\"}, "
        "{\"workload\": \"nested-mispred\"}]}";
    ASSERT_TRUE(okReply(parseJson(core.handleRequest(two))));
    const JsonValue full = parseJson(core.handleRequest(two));
    EXPECT_FALSE(okReply(full));
    EXPECT_EQ(strField(full, "error"), "queue_full");

    core.beginDrain();
    const JsonValue drained = parseJson(core.handleRequest(
        "{\"type\": \"submit\", \"jobs\": "
        "[{\"workload\": \"nested-mispred\"}]}"));
    EXPECT_FALSE(okReply(drained));
    EXPECT_EQ(strField(drained, "error"), "draining");
    // Cancelling the queued batch frees its slots again.
    ASSERT_TRUE(okReply(parseJson(
        core.handleRequest("{\"type\": \"cancel\", \"batch\": 1}"))));
    EXPECT_EQ(core.pendingJobs(), 0u);
}

TEST(ServeCore, PingReportsSchema)
{
    ServeCore core(queueOnlyOptions());
    const JsonValue reply =
        parseJson(core.handleRequest("{\"type\": \"ping\"}"));
    ASSERT_TRUE(okReply(reply));
    EXPECT_EQ(strField(reply, "schema"), "mssr-serve-v1");
}

/** Polls `status` until batch @p id settles; returns its state. */
std::string
awaitBatch(ServeCore &core, int id)
{
    for (int spin = 0; spin < 6000; ++spin) {
        const JsonValue st = parseJson(core.handleRequest(
            "{\"type\": \"status\", \"batch\": " + std::to_string(id) +
            "}"));
        const std::string state = strField(st, "state");
        if (state != "queued" && state != "running")
            return state;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return "timeout";
}

TEST(ServeCore, DoubleSubmitStreamsByteIdenticalRecords)
{
    TempDir dir;
    ServeOptions o;
    o.journalPath = dir.file("journal.jsonl");
    o.resultsPath = dir.file("results.jsonl");
    o.threads = 2;
    ServeCore core(o);
    const std::string submit =
        "{\"type\": \"submit\", \"jobs\": ["
        "{\"name\": \"a\", \"workload\": \"nested-mispred\", "
        "\"iters\": 80, \"scale\": 6}, "
        "{\"name\": \"b\", \"workload\": \"nested-mispred\", "
        "\"scheme\": \"none\", \"iters\": 80, \"scale\": 6}]}";
    ASSERT_TRUE(okReply(parseJson(core.handleRequest(submit))));
    ASSERT_TRUE(okReply(parseJson(core.handleRequest(submit))));
    ASSERT_EQ(awaitBatch(core, 1), "done");
    ASSERT_EQ(awaitBatch(core, 2), "done");

    const std::string r1 = core.handleRequest(
        "{\"type\": \"results\", \"batch\": 1, \"since\": 0}");
    const std::string r2 = core.handleRequest(
        "{\"type\": \"results\", \"batch\": 2, \"since\": 0}");
    // Identical except the batch id in the envelope: compare the
    // records arrays themselves.
    const auto records = [](const std::string &reply) {
        const auto at = reply.find("\"records\"");
        return reply.substr(at);
    };
    EXPECT_EQ(records(r1), records(r2));
    EXPECT_NE(records(r1).find("\"name\": \"a\""), std::string::npos);

    // `since` pagination: the tail after the first record.
    const JsonValue page = parseJson(core.handleRequest(
        "{\"type\": \"results\", \"batch\": 1, \"since\": 1}"));
    ASSERT_TRUE(okReply(page));
    EXPECT_EQ(numField(page, "next"), 2.0);
    ASSERT_EQ(page.object.at("records").array.size(), 1u);
    EXPECT_EQ(strField(page.object.at("records").array[0], "name"), "b");

    core.beginShutdown();
    core.finish();
}

TEST(ServeCore, JournalResumeServesOnlyTheRemainder)
{
    TempDir dir;
    ServeOptions o;
    o.journalPath = dir.file("journal.jsonl");
    o.threads = 1;
    std::string firstResults;
    {
        ServeCore core(o);
        ASSERT_TRUE(okReply(parseJson(core.handleRequest(
            "{\"type\": \"submit\", \"jobs\": ["
            "{\"name\": \"a\", \"workload\": \"nested-mispred\", "
            "\"iters\": 60, \"scale\": 6}, "
            "{\"name\": \"b\", \"workload\": \"nested-mispred\", "
            "\"iters\": 60, \"scale\": 6, \"seed\": 7}]}"))));
        ASSERT_EQ(awaitBatch(core, 1), "done");
        firstResults = core.handleRequest(
            "{\"type\": \"results\", \"batch\": 1, \"since\": 0}");
        core.beginShutdown();
        core.finish();
    }

    // Forge the crash: drop the second job's `done` line, as if the
    // process died between the two completions.
    std::vector<std::string> lines;
    {
        std::ifstream in(o.journalPath);
        std::string line;
        while (std::getline(in, line))
            if (!line.empty())
                lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 4u); // header, submit, done, done
    {
        std::ofstream out(o.journalPath, std::ios::trunc);
        for (std::size_t i = 0; i + 1 < lines.size(); ++i)
            out << lines[i] << "\n";
    }

    ServeCore core(o);
    EXPECT_EQ(core.resumedJobs(), 1u);
    EXPECT_EQ(core.pendingJobs(), 1u); // only the dropped job re-queues
    ASSERT_EQ(awaitBatch(core, 1), "done");
    const std::string secondResults = core.handleRequest(
        "{\"type\": \"results\", \"batch\": 1, \"since\": 0}");
    EXPECT_EQ(secondResults, firstResults);
    core.beginShutdown();
    core.finish();

    // The healed journal must hold exactly one extra done line and no
    // duplicated job index.
    std::size_t dones = 0;
    std::ifstream in(o.journalPath);
    std::string line;
    while (std::getline(in, line))
        dones += line.find("\"event\": \"done\"") != std::string::npos;
    EXPECT_EQ(dones, 2u);
}

TEST(ServeCore, CorruptJournalRefusesToServe)
{
    TempDir dir;
    ServeOptions o = queueOnlyOptions();
    o.journalPath = dir.file("journal.jsonl");
    {
        std::ofstream f(o.journalPath);
        f << "{\"schema\": \"mssr-serve-journal-v1\"}\n"
          << "{\"event\": \"done\", \"batch\": 1, \"job\": 0, "
             "\"record\": {}}\n"; // done for a batch never submitted
    }
    EXPECT_THROW(ServeCore core(o), std::runtime_error);
}

} // namespace
