#include <gtest/gtest.h>

#include "reuse/wpb.hh"

using namespace mssr;

namespace
{

std::vector<WpbEntry>
ranges(std::initializer_list<std::pair<Addr, Addr>> list)
{
    std::vector<WpbEntry> out;
    for (auto [s, e] : list)
        out.push_back(WpbEntry{true, s, e});
    return out;
}

} // namespace

TEST(Wpb, RoundRobinAllocation)
{
    Wpb wpb(2, 4, false);
    EXPECT_EQ(wpb.writeStream(ranges({{0x1000, 0x101c}}), 10, 1), 0u);
    EXPECT_EQ(wpb.writeStream(ranges({{0x2000, 0x201c}}), 20, 2), 1u);
    EXPECT_EQ(wpb.writeStream(ranges({{0x3000, 0x301c}}), 30, 3), 0u);
    EXPECT_EQ(wpb.stream(0).originBranchSeq, 30u);
    EXPECT_EQ(wpb.stream(1).originBranchSeq, 20u);
}

TEST(Wpb, CapacityDropsYoungerBlocks)
{
    Wpb wpb(1, 2, false);
    wpb.writeStream(ranges({{0x1000, 0x101c},
                            {0x2000, 0x201c},
                            {0x3000, 0x301c}}),
                    1, 1);
    const WpbStream &s = wpb.stream(0);
    EXPECT_TRUE(s.entries[0].valid);
    EXPECT_TRUE(s.entries[1].valid);
    EXPECT_EQ(s.entries[1].startPC, 0x2000u);
    EXPECT_EQ(s.numInsts(), 16u); // 2 blocks x 8 insts
}

TEST(Wpb, VpnRestrictionTruncatesAtPageBoundary)
{
    Wpb wpb(1, 8, true);
    // Second block on a different 4K page: dropped.
    wpb.writeStream(ranges({{0x1000, 0x101c}, {0x5000, 0x501c}}), 1, 1);
    const WpbStream &s = wpb.stream(0);
    EXPECT_TRUE(s.entries[0].valid);
    EXPECT_FALSE(s.entries[1].valid);
    EXPECT_EQ(s.vpn, 0x1u);
}

TEST(Wpb, InvalidateAndAnyValid)
{
    Wpb wpb(2, 4, false);
    EXPECT_FALSE(wpb.anyValid());
    wpb.writeStream(ranges({{0x1000, 0x1000}}), 1, 1);
    EXPECT_TRUE(wpb.anyValid());
    wpb.invalidate(0);
    EXPECT_FALSE(wpb.anyValid());
    wpb.writeStream(ranges({{0x1000, 0x1000}}), 2, 2);
    wpb.invalidateAll();
    EXPECT_FALSE(wpb.anyValid());
}

TEST(Wpb, EmptyRangesLeaveStreamInvalid)
{
    Wpb wpb(2, 4, false);
    wpb.writeStream({}, 5, 1);
    EXPECT_FALSE(wpb.stream(0).valid);
}

TEST(Wpb, StreamInstCount)
{
    Wpb wpb(1, 4, false);
    wpb.writeStream(ranges({{0x1000, 0x1004}, {0x2000, 0x2000}}), 1, 1);
    EXPECT_EQ(wpb.stream(0).numInsts(), 3u);
}
