#include <gtest/gtest.h>

#include "common/log.hh"
#include "frontend/ftq.hh"

using namespace mssr;

namespace
{

PredBlock
block(std::uint64_t id, Addr start, unsigned insts, Addr next = 0)
{
    PredBlock b;
    b.id = id;
    b.startPC = start;
    b.endPC = start + (insts - 1) * InstBytes;
    b.nextPC = next ? next : b.endPC + InstBytes;
    return b;
}

} // namespace

TEST(Ftq, FetchCursorWalksBlocks)
{
    Ftq ftq(8);
    ftq.push(block(1, 0x1000, 2));
    ftq.push(block(2, 0x2000, 3));
    ASSERT_NE(ftq.fetchHead(), nullptr);
    EXPECT_EQ(ftq.fetchHead()->id, 1u);
    ftq.advanceFetch(1);
    EXPECT_EQ(ftq.fetchOffset(), 1u);
    ftq.advanceFetch(1); // block 1 done
    EXPECT_EQ(ftq.fetchHead()->id, 2u);
    EXPECT_EQ(ftq.fetchOffset(), 0u);
}

TEST(Ftq, FullAndEmpty)
{
    Ftq ftq(2);
    EXPECT_TRUE(ftq.empty());
    ftq.push(block(1, 0x1000, 1));
    ftq.push(block(2, 0x2000, 1));
    EXPECT_TRUE(ftq.full());
    EXPECT_THROW(ftq.push(block(3, 0x3000, 1)), SimPanic);
}

TEST(Ftq, SquashAfterMidBlock)
{
    Ftq ftq(8);
    ftq.push(block(1, 0x1000, 4)); // insts at 0x1000..0x100c
    ftq.push(block(2, 0x2000, 4));
    // Fetch everything.
    for (int i = 0; i < 8; ++i)
        ftq.advanceFetch(1);
    // Redirecting instruction: 0x1004 in block 1; everything after is
    // the squashed path.
    const auto squashed = ftq.squashAfter(1, 0x1004);
    ASSERT_EQ(squashed.size(), 2u);
    EXPECT_EQ(squashed[0].startPC, 0x1008u); // tail of block 1
    EXPECT_EQ(squashed[0].endPC, 0x100cu);
    EXPECT_EQ(squashed[1].startPC, 0x2000u);
    EXPECT_EQ(squashed[1].endPC, 0x200cu);
    EXPECT_EQ(ftq.size(), 1u); // truncated pivot remains
}

TEST(Ftq, SquashReturnsOnlyFetchedPrefix)
{
    Ftq ftq(8);
    ftq.push(block(1, 0x1000, 2));
    ftq.push(block(2, 0x2000, 8));
    ftq.advanceFetch(1);
    ftq.advanceFetch(1); // block 1 fully fetched
    ftq.advanceFetch(1); // one inst of block 2
    const auto squashed = ftq.squashAfter(1, 0x1004);
    // Block 2: only its fetched first instruction is squashed path.
    ASSERT_EQ(squashed.size(), 1u);
    EXPECT_EQ(squashed[0].startPC, 0x2000u);
    EXPECT_EQ(squashed[0].endPC, 0x2000u);
}

TEST(Ftq, RetireDeallocatesOldBlocks)
{
    Ftq ftq(4);
    ftq.push(block(1, 0x1000, 1));
    ftq.push(block(2, 0x2000, 1));
    ftq.push(block(3, 0x3000, 1));
    for (int i = 0; i < 3; ++i)
        ftq.advanceFetch(1);
    ftq.retireUpTo(3); // blocks 1 and 2 retire
    EXPECT_EQ(ftq.size(), 1u);
    EXPECT_FALSE(ftq.full());
}

TEST(Ftq, SquashWithRetiredPivotFlushesEverything)
{
    Ftq ftq(4);
    ftq.push(block(5, 0x1000, 1));
    ftq.advanceFetch(1);
    // Pivot id 3 no longer exists (retired before): conservative flush.
    const auto squashed = ftq.squashAfter(3, 0x0900);
    EXPECT_EQ(squashed.size(), 1u);
    EXPECT_TRUE(ftq.empty());
}
