/**
 * Workload-construction tests: every registered benchmark assembles,
 * runs to completion on the functional emulator, and exhibits the
 * branch behaviour its SPEC counterpart is meant to model (H2P
 * benchmarks mispredict heavily; exchange2 predicts almost perfectly;
 * mcf misses in cache).
 */

#include <gtest/gtest.h>

#include "driver/sim_runner.hh"
#include "sim/func_emu.hh"
#include "workloads/micro.hh"
#include "workloads/registry.hh"
#include "workloads/speclike.hh"

using namespace mssr;
using namespace mssr::workloads;

namespace
{

WorkloadScale
smallScale()
{
    WorkloadScale scale;
    scale.graphScale = 7;
    scale.iterations = 300;
    return scale;
}

} // namespace

TEST(Workloads, SuitesEnumerate)
{
    EXPECT_EQ(suiteWorkloads("spec2006").size(), 5u);
    EXPECT_EQ(suiteWorkloads("spec2017").size(), 6u);
    EXPECT_EQ(suiteWorkloads("gap").size(), 6u);
    EXPECT_EQ(suiteWorkloads("micro").size(), 2u);
    EXPECT_THROW(suiteWorkloads("nope"), SimFatal);
    EXPECT_THROW(buildWorkload("nope", smallScale()), SimFatal);
}

TEST(Workloads, EveryWorkloadRunsToHalt)
{
    const WorkloadScale scale = smallScale();
    for (const std::string suite : {"spec2006", "spec2017", "gap",
                                    "micro"}) {
        for (const Workload &w : suiteWorkloads(suite)) {
            const isa::Program prog = buildWorkload(w.name, scale);
            Memory mem;
            FuncEmu emu(prog, mem);
            emu.run(50'000'000);
            EXPECT_TRUE(emu.halted()) << w.name << " did not halt";
            EXPECT_GT(emu.instret(), 100u) << w.name << " trivially short";
        }
    }
}

TEST(Workloads, H2PKernelsMispredictHeavily)
{
    SimConfig cfg = baselineConfig();
    for (const std::string name : {"gobmk", "astar", "leela"}) {
        const isa::Program prog = buildWorkload(name, smallScale());
        const RunResult r = runSim(prog, cfg);
        EXPECT_GT(r.stats.get("core.condMispredictRate"), 0.03)
            << name << " should be hard to predict";
    }
}

TEST(Workloads, Exchange2IsPredictable)
{
    const isa::Program prog = buildWorkload("exchange2", smallScale());
    const RunResult r = runSim(prog, baselineConfig());
    EXPECT_LT(r.stats.get("core.condMispredictRate"), 0.02);
}

TEST(Workloads, McfIsMemoryBound)
{
    const isa::Program prog = buildWorkload("mcf", smallScale());
    const RunResult r = runSim(prog, baselineConfig());
    // Pointer chase over 4MB: L2 misses dominate and IPC collapses.
    EXPECT_GT(r.stats.get("l2.misses"), 100.0);
    EXPECT_LT(r.ipc, 0.5);
}

TEST(Workloads, XzProducesVerificationTraffic)
{
    SpecParams params;
    params.iterations = 600;
    const isa::Program prog = makeXzLike(params);
    const RunResult r = runSim(prog, rgidConfig(4, 64));
    // Reused loads exist, and some verifications fail because the
    // match loop's stores alias them (paper section 4.1.1 on xz).
    EXPECT_GT(r.stats.get("reuse.loadsReused"), 0.0);
    EXPECT_GT(r.stats.get("core.verifyOk") +
                  r.stats.get("core.verifyFailFlushes"),
              0.0);
}

TEST(Workloads, MicroVariantsDifferInResolutionOrder)
{
    MicroParams params;
    params.iterations = 1500;
    const RunResult nested =
        runSim(makeNestedMispred(params), rgidConfig(4, 64));
    const RunResult linear =
        runSim(makeLinearMispred(params), rgidConfig(4, 64));
    // Both variants reuse; nested-mispred (out-of-order resolution)
    // must exhibit hardware-induced reconvergence.
    EXPECT_GT(nested.stats.get("reuse.reconvHardware"), 0.0);
    EXPECT_GT(nested.stats.get("reuse.success"), 0.0);
    EXPECT_GT(linear.stats.get("reuse.success"), 0.0);
}

TEST(Workloads, ScaleFromEnvDefaults)
{
    // Without env overrides the defaults apply.
    const WorkloadScale scale = WorkloadScale::fromEnv();
    EXPECT_GE(scale.graphScale, 1u);
    EXPECT_GE(scale.iterations, 1u);
}
