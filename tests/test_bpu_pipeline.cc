#include <gtest/gtest.h>

#include "frontend/bpu_pipeline.hh"
#include "isa/assembler.hh"

using namespace mssr;

namespace
{

CoreConfig
bimodalCfg()
{
    CoreConfig cfg;
    cfg.predictor = BranchPredictorKind::Bimodal;
    return cfg;
}

} // namespace

TEST(BpuPipeline, BlockEndsAtFetchLimit)
{
    // 10 plain instructions: the first block must stop at 8 (32B).
    isa::Program prog = isa::assembleProgram(R"(
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        halt
    )");
    CoreConfig cfg = bimodalCfg();
    BpuPipeline bpu(cfg, prog);
    const PredBlock b = bpu.formBlock();
    EXPECT_EQ(b.startPC, prog.codeBase());
    EXPECT_EQ(b.numInsts(), 8u);
    EXPECT_EQ(b.nextPC, prog.codeBase() + 8 * InstBytes);
    EXPECT_TRUE(b.branches.empty());
}

TEST(BpuPipeline, BlockEndsAtPredictedTakenJump)
{
    isa::Program prog = isa::assembleProgram(R"(
        nop
        j target
        nop
    target:
        halt
    )");
    CoreConfig cfg = bimodalCfg();
    BpuPipeline bpu(cfg, prog);
    const PredBlock b = bpu.formBlock();
    EXPECT_EQ(b.numInsts(), 2u); // nop + j
    EXPECT_EQ(b.nextPC, prog.label("target"));
    ASSERT_EQ(b.branches.size(), 1u);
    EXPECT_TRUE(b.branches[0].predTaken);
}

TEST(BpuPipeline, NotTakenBranchDoesNotEndBlock)
{
    // Bimodal initializes weakly not-taken: the block runs through the
    // branch to the fetch limit.
    isa::Program prog = isa::assembleProgram(R"(
        beq t0, t1, far
        nop
        nop
        nop
        nop
        nop
        nop
        nop
    far:
        halt
    )");
    CoreConfig cfg = bimodalCfg();
    BpuPipeline bpu(cfg, prog);
    const PredBlock b = bpu.formBlock();
    EXPECT_EQ(b.numInsts(), 8u);
    ASSERT_EQ(b.branches.size(), 1u);
    EXPECT_FALSE(b.branches[0].predTaken);
}

TEST(BpuPipeline, RedirectRetrainsAndRetargets)
{
    isa::Program prog = isa::assembleProgram(R"(
        beq t0, t1, far
        nop
    far:
        halt
    )");
    CoreConfig cfg = bimodalCfg();
    BpuPipeline bpu(cfg, prog);
    PredBlock b = bpu.formBlock();
    ASSERT_EQ(b.branches.size(), 1u);
    EXPECT_FALSE(b.branches[0].predTaken);
    // The branch was actually taken: redirect the frontend.
    const Addr target = prog.label("far");
    bpu.redirect(b.branches[0], true, target,
                 prog.instAt(b.branches[0].pc));
    EXPECT_EQ(bpu.fetchTarget(), target);
    // Train at commit a few times; prediction should flip to taken.
    for (int i = 0; i < 4; ++i)
        bpu.commitControl(b.branches[0].pc, prog.instAt(b.branches[0].pc),
                          true, target);
    bpu.redirectSimple(prog.codeBase());
    b = bpu.formBlock();
    ASSERT_EQ(b.branches.size(), 1u);
    EXPECT_TRUE(b.branches[0].predTaken);
    EXPECT_EQ(b.nextPC, target);
}

TEST(BpuPipeline, RasPredictsReturn)
{
    isa::Program prog = isa::assembleProgram(R"(
        call func
        nop
        halt
    func:
        ret
    )");
    CoreConfig cfg = bimodalCfg();
    BpuPipeline bpu(cfg, prog);
    const PredBlock callBlock = bpu.formBlock();
    EXPECT_EQ(callBlock.nextPC, prog.label("func"));
    const PredBlock retBlock = bpu.formBlock();
    ASSERT_EQ(retBlock.branches.size(), 1u);
    // The RAS supplies the return target: the instruction after call.
    EXPECT_EQ(retBlock.nextPC, prog.codeBase() + InstBytes);
}

TEST(BpuPipeline, JalrUsesBtbAfterTraining)
{
    isa::Program prog = isa::assembleProgram(R"(
        jalr t1, 0(t0)
        nop
    dest:
        halt
    )");
    CoreConfig cfg = bimodalCfg();
    BpuPipeline bpu(cfg, prog);
    // Untrained: falls through (no target knowledge).
    PredBlock b = bpu.formBlock();
    EXPECT_EQ(b.nextPC, prog.codeBase() + InstBytes);
    // Commit-train the BTB, re-form: target predicted.
    bpu.commitControl(prog.codeBase(), prog.instAt(prog.codeBase()), true,
                      prog.label("dest"));
    bpu.redirectSimple(prog.codeBase());
    b = bpu.formBlock();
    EXPECT_EQ(b.nextPC, prog.label("dest"));
}

TEST(BpuPipeline, WrongPathOutsideCodeSynthesizesFullBlocks)
{
    isa::Program prog = isa::assembleProgram("halt");
    CoreConfig cfg = bimodalCfg();
    BpuPipeline bpu(cfg, prog);
    bpu.redirectSimple(0xdead000);
    const PredBlock b = bpu.formBlock();
    EXPECT_EQ(b.startPC, 0xdead000u);
    EXPECT_EQ(b.numInsts(), 8u);
    EXPECT_TRUE(b.branches.empty());
}
