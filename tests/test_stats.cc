#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/stats.hh"

using namespace mssr;

TEST(StatSet, SetGetAdd)
{
    StatSet s;
    EXPECT_FALSE(s.has("x"));
    EXPECT_EQ(s.get("x", -1.0), -1.0);
    s.set("x", 3.0);
    EXPECT_TRUE(s.has("x"));
    EXPECT_EQ(s.get("x"), 3.0);
    s.add("x", 2.0);
    EXPECT_EQ(s.get("x"), 5.0);
    s.add("fresh", 1.0); // add creates
    EXPECT_EQ(s.get("fresh"), 1.0);
}

TEST(StatSet, DumpSortedByName)
{
    StatSet s;
    s.set("b", 2);
    s.set("a", 1);
    std::ostringstream os;
    s.dump(os);
    const std::string text = os.str();
    EXPECT_LT(text.find("a"), text.find("b"));
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4); // buckets 0..3 + overflow
    h.sample(0);
    h.sample(1);
    h.sample(1);
    h.sample(9); // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(4), 1u); // overflow bucket
}

TEST(Histogram, Fractions)
{
    Histogram h(4);
    for (int i = 0; i < 3; ++i)
        h.sample(0);
    h.sample(1);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(1), 1.0);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(0), 0.75);
}

TEST(Histogram, EmptyFractionsAreZero)
{
    Histogram h(4);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
    EXPECT_DOUBLE_EQ(h.cumulativeFraction(3), 0.0);
}

TEST(Histogram, Reset)
{
    Histogram h(2);
    h.sample(1);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(1), 0u);
}

TEST(Histogram, DefaultConstructedPanicsOnSample)
{
    // The seed silently lazy-resized to one bucket + overflow here,
    // collapsing every distribution into "0 or more" with no warning.
    Histogram h;
    EXPECT_EQ(h.numBuckets(), 0u);
    EXPECT_THROW(h.sample(0), SimPanic);
}

TEST(Histogram, DefaultConstructedPanicsOnMeanAndPercentile)
{
    // Reading a distribution nobody could ever have sampled into is
    // the same bug class as sampling into one: panic, don't return 0.
    Histogram h;
    EXPECT_THROW(h.mean(), SimPanic);
    EXPECT_THROW(h.percentile(0.5), SimPanic);

    // A sized-but-unsampled histogram is a legitimate "nothing
    // happened" distribution -- e.g. a sampled window with no reuse
    // lag entries -- but it has no mean and no percentiles. Both read
    // as NaN (rendered "n/a" by the formatters, like percent()/
    // fixed()); 0.0 would silently claim "every sample was zero".
    Histogram sized(4);
    EXPECT_TRUE(std::isnan(sized.mean()));
    EXPECT_TRUE(std::isnan(sized.percentile(0.0)));
    EXPECT_TRUE(std::isnan(sized.percentile(0.5)));
    EXPECT_TRUE(std::isnan(sized.percentile(1.0)));
    // One sample flips both from NaN to defined values.
    sized.sample(2);
    EXPECT_DOUBLE_EQ(sized.mean(), 2.0);
    EXPECT_DOUBLE_EQ(sized.percentile(0.5), 2.0);
    // reset() returns the histogram to the no-distribution state.
    sized.reset();
    EXPECT_TRUE(std::isnan(sized.mean()));
    EXPECT_TRUE(std::isnan(sized.percentile(0.5)));
}

TEST(Histogram, Mean)
{
    Histogram h(8);
    EXPECT_TRUE(std::isnan(h.mean())); // empty: no distribution
    h.sample(2);
    h.sample(4);
    EXPECT_DOUBLE_EQ(h.mean(), 3.0);
    // Overflow samples are clamped into the overflow bucket (index
    // 8), so the mean becomes a lower bound: (2 + 4 + 8) / 3.
    h.sample(100);
    EXPECT_DOUBLE_EQ(h.mean(), 14.0 / 3.0);
}

TEST(Histogram, Percentile)
{
    Histogram h(10);
    for (std::uint64_t v : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 9u})
        h.sample(v);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.9), 9.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 9.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0); // smallest non-empty bucket
    EXPECT_THROW(h.percentile(1.5), SimPanic);

    Histogram empty(4);
    EXPECT_TRUE(std::isnan(empty.percentile(0.5)));

    // Overflow samples report the overflow bucket's index.
    Histogram o(4);
    o.sample(99);
    EXPECT_DOUBLE_EQ(o.percentile(1.0), 4.0);
}
