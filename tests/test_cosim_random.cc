/**
 * Randomized configuration x program co-simulation: every point in a
 * seeded random sample of the configuration space must preserve
 * architectural equivalence on a randomly generated branchy program.
 * This is the widest-net property test in the suite -- it has caught
 * interactions (reservation leaks, session aborts mid-bundle) that the
 * directed tests missed.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hh"
#include "cosim_triage.hh"
#include "driver/sim_runner.hh"
#include "isa/assembler.hh"
#include "sim/func_emu.hh"

using namespace mssr;

namespace
{

/** Random branchy program over a small memory arena (seeded). */
isa::Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream os;
    const unsigned iters = 80 + rng.below(80);
    os << "    li s0, 0\n    li s1, " << iters << "\n";
    os << "    la s2, arena\n";
    os << "outer:\n";
    os << "    addi t0, s0, " << (1 + rng.below(1 << 16)) << "\n";
    os << "    li t1, -0x61c8864680b583eb\n    mul t0, t0, t1\n";
    os << "    srli t1, t0, 31\n    xor t0, t0, t1\n";
    const unsigned blocks = 3 + rng.below(5);
    for (unsigned b = 0; b < blocks; ++b) {
        const std::string l = "L" + std::to_string(b);
        switch (rng.below(6)) {
          case 0:
            os << "    andi t2, t0, " << (1u << rng.below(3)) << "\n"
               << "    beqz t2, " << l << "\n"
               << "    addi s3, s3, " << rng.below(64) << "\n"
               << l << ":\n"
               << "    xori s4, s4, " << rng.below(64) << "\n";
            break;
          case 1: // call through a hashed condition
            os << "    andi t2, t0, 2\n"
               << "    bnez t2, " << l << "\n"
               << "    call helper" << (b % 2) << "\n"
               << l << ":\n";
            break;
          case 2: // conditional store + unconditional load
            os << "    andi t2, t0, 4\n"
               << "    beqz t2, " << l << "\n"
               << "    andi t3, t0, 120\n"
               << "    add t3, t3, s2\n"
               << "    sd s3, 0(t3)\n"
               << l << ":\n"
               << "    andi t4, t0, 248\n"
               << "    add t4, t4, s2\n"
               << "    ld s5, 0(t4)\n"
               << "    add s3, s3, s5\n";
            break;
          case 3: // divides delay resolution
            os << "    ori t5, t0, 1\n"
               << "    div s7, s3, t5\n"
               << "    mul s8, s7, t5\n";
            break;
          case 4: // nested branches
            os << "    andi t2, t0, 1\n"
               << "    beqz t2, " << l << "a\n"
               << "    andi t3, t0, 8\n"
               << "    beqz t3, " << l << "b\n"
               << "    addi s9, s9, 1\n"
               << l << "b:\n"
               << "    addi s10, s10, 2\n"
               << l << "a:\n";
            break;
          default: // byte traffic
            os << "    andi t3, t0, 252\n"
               << "    add t3, t3, s2\n"
               << "    sb t0, 1(t3)\n"
               << "    lbu s11, 0(t3)\n";
            break;
        }
    }
    os << "    addi s0, s0, 1\n    blt s0, s1, outer\n    halt\n";
    os << "helper0:\n    addi a0, a0, 3\n    xori a0, a0, 9\n    ret\n";
    os << "helper1:\n    addi a1, a1, 5\n    ret\n";

    isa::Program prog;
    prog.allocData("arena", 512);
    isa::assemble(prog, os.str());
    return prog;
}

/** Random but valid configuration (seeded). */
SimConfig
randomConfig(std::uint64_t seed)
{
    Rng rng(seed * 77 + 5);
    SimConfig cfg;
    switch (rng.below(3)) {
      case 0:
        cfg.reuseKind = ReuseKind::None;
        break;
      case 1: {
        cfg.reuseKind = ReuseKind::Rgid;
        const unsigned streams[] = {1, 2, 3, 4, 8};
        cfg.reuse.numStreams = streams[rng.below(5)];
        const unsigned entries[] = {8, 16, 64, 128};
        cfg.reuse.squashLogEntriesPerStream = entries[rng.below(4)];
        cfg.reuse.wpbEntriesPerStream =
            std::max(1u, cfg.reuse.squashLogEntriesPerStream / 4);
        cfg.reuse.useBloomFilter = rng.chance(0.3);
        cfg.reuse.reuseLoads = rng.chance(0.8);
        cfg.reuse.restrictVpn = rng.chance(0.5);
        cfg.reuse.rgidBits = 4 + rng.below(5);
        cfg.reuse.reconvTimeoutInsts = 64 << rng.below(5);
        break;
      }
      default: {
        cfg.reuseKind = ReuseKind::RegInt;
        const unsigned sets[] = {16, 64, 128};
        cfg.regint.sets = sets[rng.below(3)];
        cfg.regint.ways = 1 + rng.below(4);
        cfg.regint.modelSerializedAccess = rng.chance(0.5);
        break;
      }
    }
    if (rng.chance(0.3)) {
        cfg.core.robEntries = 64 << rng.below(3);
        cfg.core.physRegs = cfg.core.robEntries;
    }
    if (rng.chance(0.3))
        cfg.core.predictor = rng.chance(0.5)
                                 ? BranchPredictorKind::Gshare
                                 : BranchPredictorKind::Bimodal;
    if (rng.chance(0.2))
        cfg.core.decodeWidth = cfg.core.commitWidth = 4;
    return cfg;
}

} // namespace

class RandomCosim : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomCosim, ArchitecturallyInvisible)
{
    const std::uint64_t seed = GetParam();
    const isa::Program prog = randomProgram(seed);
    const SimConfig cfg = randomConfig(seed);

    Memory refMem;
    FuncEmu emu(prog, refMem);
    emu.run(10'000'000);
    ASSERT_TRUE(emu.halted());

    SimConfig traced = cfg;
    CosimTriage triage("seed " + std::to_string(seed), traced);
    Memory o3Mem;
    const RunResult r = runSim(prog, traced, &o3Mem);
    ASSERT_TRUE(r.halted) << "seed " << seed;
    EXPECT_EQ(r.insts, emu.instret()) << "seed " << seed;
    for (unsigned reg = 0; reg < NumArchRegs; ++reg)
        ASSERT_EQ(r.archRegs[reg], emu.reg(static_cast<ArchReg>(reg)))
            << "seed " << seed << " reg "
            << isa::regName(static_cast<ArchReg>(reg));
    ASSERT_TRUE(o3Mem.equals(refMem)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCosim,
                         ::testing::Range<std::uint64_t>(1, 41));
