#include <gtest/gtest.h>

#include <sstream>

#include "analysis/report.hh"

using namespace mssr::analysis;

TEST(Report, PercentFormatting)
{
    EXPECT_EQ(percent(0.024), "+2.4%");
    EXPECT_EQ(percent(-0.001), "-0.1%");
    EXPECT_EQ(percent(0.0), "+0.0%");
    EXPECT_EQ(percent(0.12345, 2), "+12.35%");
}

TEST(Report, FixedFormatting)
{
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Report, TableAlignsColumns)
{
    Table t({"Name", "Value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string text = os.str();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
    // The value column starts at the same offset on each line.
    const auto lines = [&] {
        std::vector<std::string> out;
        std::istringstream in(text);
        std::string line;
        while (std::getline(in, line))
            out.push_back(line);
        return out;
    }();
    EXPECT_EQ(lines[0].find("Value"), lines[2].find("1"));
    EXPECT_EQ(lines[0].find("Value"), lines[3].find("22"));
}

TEST(Report, ShortRowsArePadded)
{
    Table t({"A", "B", "C"});
    t.addRow({"only-one"});
    std::ostringstream os;
    t.print(os); // must not throw
    EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Report, Banner)
{
    std::ostringstream os;
    banner(os, "Table 1");
    EXPECT_NE(os.str().find("=== Table 1 ==="), std::string::npos);
}
