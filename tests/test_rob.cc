#include <gtest/gtest.h>

#include "core/rob.hh"

using namespace mssr;

namespace
{

DynInstPtr
makeInst(SeqNum seq)
{
    auto inst = std::make_shared<DynInst>();
    inst->seq = seq;
    return inst;
}

} // namespace

TEST(Rob, FifoOrder)
{
    Rob rob(4);
    rob.push(makeInst(1));
    rob.push(makeInst(2));
    EXPECT_EQ(rob.head()->seq, 1u);
    rob.popHead();
    EXPECT_EQ(rob.head()->seq, 2u);
}

TEST(Rob, CapacityEnforced)
{
    Rob rob(2);
    rob.push(makeInst(1));
    rob.push(makeInst(2));
    EXPECT_TRUE(rob.full());
    EXPECT_THROW(rob.push(makeInst(3)), SimPanic);
}

TEST(Rob, ProgramOrderEnforced)
{
    Rob rob(4);
    rob.push(makeInst(5));
    EXPECT_THROW(rob.push(makeInst(4)), SimPanic);
}

TEST(Rob, SquashAfterWalksYoungestFirst)
{
    Rob rob(8);
    for (SeqNum s = 1; s <= 5; ++s)
        rob.push(makeInst(s));
    std::vector<SeqNum> undone;
    rob.squashAfter(2, [&](const DynInstPtr &inst) {
        undone.push_back(inst->seq);
    });
    EXPECT_EQ(undone, (std::vector<SeqNum>{5, 4, 3}));
    EXPECT_EQ(rob.size(), 2u);
}

TEST(Rob, SquashAfterNoMatchIsNoOp)
{
    Rob rob(4);
    rob.push(makeInst(1));
    int count = 0;
    rob.squashAfter(10, [&](const DynInstPtr &) { ++count; });
    EXPECT_EQ(count, 0);
    EXPECT_EQ(rob.size(), 1u);
}

TEST(Rob, IterationOldestFirst)
{
    Rob rob(4);
    rob.push(makeInst(7));
    rob.push(makeInst(8));
    SeqNum expect = 7;
    for (const auto &inst : rob)
        EXPECT_EQ(inst->seq, expect++);
}
