/**
 * Sampled simulation engine: Student-t critical values, population
 * estimates, the checkpoint schedule scan (boundary edge cases,
 * store reuse, history rings), the sampled batch runner's
 * determinism / merge invariants / config rejection, the functional
 * cache-warming replay, and the interval-flush regression (a run
 * halting exactly on a stats-interval boundary must not emit a
 * zero-cycle trailing sample).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "driver/sampled_runner.hh"
#include "driver/sim_runner.hh"
#include "sim/checkpoint.hh"
#include "sim/sample_schedule.hh"
#include "workloads/registry.hh"

using namespace mssr;

namespace
{

isa::Program
testProgram(const std::string &name = "bfs")
{
    workloads::WorkloadScale scale;
    scale.graphScale = 6;
    scale.iterations = 120;
    return workloads::buildWorkload(name, scale);
}

/** Bitwise equality of two sampled results' deterministic fields. */
void
expectSampledIdentical(const SampledRunResult &a, const SampledRunResult &b,
                       const std::string &what)
{
    EXPECT_EQ(a.windows, b.windows) << what;
    EXPECT_EQ(a.totalInsts, b.totalInsts) << what;
    EXPECT_EQ(a.halted, b.halted) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.insts, b.insts) << what;
    EXPECT_EQ(a.ipc, b.ipc) << what; // exact: same merge, same order
    EXPECT_TRUE(a.cpi == b.cpi) << what << " CPI stack";
    EXPECT_TRUE(a.funnel == b.funnel) << what << " funnel";
    EXPECT_EQ(a.ipcEst.n, b.ipcEst.n) << what;
    // NaN != NaN, so compare estimate doubles via bit-for-bit ==
    // only when defined; both sides must agree on definedness.
    EXPECT_EQ(std::isnan(a.ipcEst.mean), std::isnan(b.ipcEst.mean)) << what;
    if (!std::isnan(a.ipcEst.mean)) {
        EXPECT_EQ(a.ipcEst.mean, b.ipcEst.mean) << what;
    }
    EXPECT_EQ(std::isnan(a.ipcEst.ci95), std::isnan(b.ipcEst.ci95)) << what;
    if (!std::isnan(a.ipcEst.ci95)) {
        EXPECT_EQ(a.ipcEst.ci95, b.ipcEst.ci95) << what;
    }
    ASSERT_EQ(a.windowResults.size(), b.windowResults.size()) << what;
    for (std::size_t w = 0; w < a.windowResults.size(); ++w) {
        EXPECT_EQ(a.windowResults[w].cycles, b.windowResults[w].cycles)
            << what << " window " << w;
        EXPECT_EQ(a.windowResults[w].insts, b.windowResults[w].insts)
            << what << " window " << w;
    }
}

} // namespace

TEST(Sampling, TCritical95MatchesTheStandardTable)
{
    EXPECT_TRUE(std::isnan(tCritical95(0)));
    EXPECT_DOUBLE_EQ(tCritical95(1), 12.706);
    EXPECT_DOUBLE_EQ(tCritical95(5), 2.571);
    EXPECT_DOUBLE_EQ(tCritical95(30), 2.042);
    EXPECT_DOUBLE_EQ(tCritical95(31), 2.021);
    EXPECT_DOUBLE_EQ(tCritical95(40), 2.021);
    EXPECT_DOUBLE_EQ(tCritical95(60), 2.000);
    EXPECT_DOUBLE_EQ(tCritical95(120), 1.980);
    EXPECT_DOUBLE_EQ(tCritical95(121), 1.960);
    EXPECT_DOUBLE_EQ(tCritical95(100000), 1.960);
}

TEST(Sampling, EstimateFromEmptySingleAndKnownSamples)
{
    const SampleEstimate none = estimateFrom({});
    EXPECT_EQ(none.n, 0u);
    EXPECT_TRUE(std::isnan(none.mean));
    EXPECT_TRUE(std::isnan(none.stdErr));
    EXPECT_TRUE(std::isnan(none.ci95));
    EXPECT_FALSE(none.covers(0.0)) << "undefined interval covers nothing";

    const SampleEstimate one = estimateFrom({2.0});
    EXPECT_EQ(one.n, 1u);
    EXPECT_DOUBLE_EQ(one.mean, 2.0);
    EXPECT_TRUE(std::isnan(one.stdErr)) << "n = 1 has no spread estimate";
    EXPECT_TRUE(std::isnan(one.ci95));
    EXPECT_FALSE(one.covers(2.0));

    // {1, 2, 3, 4}: mean 2.5, sample variance 5/3, stderr
    // sqrt(5/12), CI = t(3) * stderr with t(3) = 3.182.
    const SampleEstimate four = estimateFrom({1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(four.n, 4u);
    EXPECT_DOUBLE_EQ(four.mean, 2.5);
    EXPECT_NEAR(four.stdErr, std::sqrt(5.0 / 12.0), 1e-12);
    EXPECT_NEAR(four.ci95, 3.182 * std::sqrt(5.0 / 12.0), 1e-12);
    EXPECT_TRUE(four.covers(2.5));
    EXPECT_TRUE(four.covers(2.5 + four.ci95));
    EXPECT_FALSE(four.covers(10.0));
}

TEST(Sampling, ScheduleCheckpointsEveryPeriodUntilHalt)
{
    const isa::Program prog = testProgram();
    const std::uint64_t period = 5000;
    const SampleSchedule sched = buildSampleSchedule(prog, period);

    EXPECT_TRUE(sched.halted);
    EXPECT_GT(sched.totalInsts, period) << "workload too short for the test";
    // Boundaries strictly inside the run get a checkpoint; the halt
    // boundary (and anything past it) must not.
    const std::uint64_t expected = (sched.totalInsts - 1) / period;
    ASSERT_EQ(sched.checkpoints.size(), expected);
    EXPECT_EQ(sched.windows(), expected + 1);
    for (std::size_t i = 0; i < sched.checkpoints.size(); ++i) {
        const Checkpoint &ck = sched.checkpoints[i];
        EXPECT_EQ(ck.ffInsts, (i + 1) * period);
        EXPECT_EQ(ck.instret, ck.ffInsts) << "boundary inside the run";
        EXPECT_EQ(ck.programHash, prog.hash());
        EXPECT_FALSE(ck.halted);
        EXPECT_GT(ck.branchHist.size(), 0u);
        EXPECT_GT(ck.memHist.size(), 0u)
            << "scan must record data accesses for cache warming";
    }
}

TEST(Sampling, ScheduleBoundaryEdgeCases)
{
    const isa::Program prog = testProgram();

    // A bound of exactly two periods: only the interior boundary (one
    // period in) starts a window; the boundary at the bound itself
    // must not (a zero-length window would observe nothing).
    const SampleSchedule two = buildSampleSchedule(
        prog, 4000, FuncTier::Fast, "", /*maxInsts=*/8000);
    EXPECT_EQ(two.totalInsts, 8000u);
    EXPECT_FALSE(two.halted);
    ASSERT_EQ(two.checkpoints.size(), 1u);
    EXPECT_EQ(two.windows(), 2u);

    // A fractional trailing period keeps its window.
    const SampleSchedule frac = buildSampleSchedule(
        prog, 3000, FuncTier::Fast, "", /*maxInsts=*/7000);
    EXPECT_EQ(frac.totalInsts, 7000u);
    ASSERT_EQ(frac.checkpoints.size(), 2u);
    EXPECT_EQ(frac.windows(), 3u);

    // A period longer than the whole program: one reset window only.
    const SampleSchedule big =
        buildSampleSchedule(prog, 1000000000ull);
    EXPECT_TRUE(big.halted);
    EXPECT_EQ(big.checkpoints.size(), 0u);
    EXPECT_EQ(big.windows(), 1u);

    EXPECT_THROW(buildSampleSchedule(prog, 0), std::invalid_argument);
}

TEST(Sampling, ScheduleStoreRoundTripIsByteDeterministic)
{
    const isa::Program prog = testProgram();
    const std::string dir = testing::TempDir() + "mssr_sample_store_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    const SampleSchedule cold =
        buildSampleSchedule(prog, 5000, FuncTier::Fast, dir);
    EXPECT_EQ(cold.diskHits, 0u);
    const SampleSchedule warm =
        buildSampleSchedule(prog, 5000, FuncTier::Fast, dir);
    EXPECT_EQ(warm.diskHits, cold.checkpoints.size());
    // Cross-tier: an interpreter scan consuming the fast-tier store
    // must land on the same schedule (the tiers are cosim-identical).
    const SampleSchedule interp =
        buildSampleSchedule(prog, 5000, FuncTier::Interpreter, dir);
    EXPECT_EQ(interp.diskHits, cold.checkpoints.size());

    ASSERT_EQ(warm.checkpoints.size(), cold.checkpoints.size());
    ASSERT_EQ(interp.checkpoints.size(), cold.checkpoints.size());
    for (std::size_t i = 0; i < cold.checkpoints.size(); ++i) {
        EXPECT_TRUE(warm.checkpoints[i] == cold.checkpoints[i])
            << "store hit diverged at boundary " << i;
        EXPECT_TRUE(interp.checkpoints[i] == cold.checkpoints[i])
            << "cross-tier store hit diverged at boundary " << i;
    }
    std::filesystem::remove_all(dir);
}

TEST(Sampling, MemHistoryRingKeepsTheNewestAccessesInOrder)
{
    MemHistory h(4);
    for (Addr a = 1; a <= 6; ++a)
        h.note(a * 64, a % 2 == 0);
    EXPECT_EQ(h.size(), 4u);
    const std::vector<MemAccess> recs = h.inOrder();
    ASSERT_EQ(recs.size(), 4u);
    for (std::size_t i = 0; i < recs.size(); ++i) {
        const Addr expected = (i + 3) * 64; // 3, 4, 5, 6
        EXPECT_EQ(recs[i].addr, expected);
        EXPECT_EQ(recs[i].isStore, (i + 3) % 2 == 0);
    }
}

TEST(Sampling, CheckpointMemHistoryRoundTripsThroughTheFile)
{
    const isa::Program prog = testProgram();
    const Checkpoint ckpt = computeCheckpoint(prog, 4000);
    EXPECT_GT(ckpt.memHist.size(), 0u);
    EXPECT_GT(ckpt.branchHist.size(), 0u);

    const std::string path = testing::TempDir() +
                             checkpointFileName(prog.hash(), 4000);
    writeCheckpoint(path, ckpt);
    const Checkpoint back = readCheckpoint(path);
    std::filesystem::remove(path);
    EXPECT_TRUE(back == ckpt) << "v2 MEMH section did not round-trip";
    ASSERT_EQ(back.memHist.size(), ckpt.memHist.size());
    EXPECT_EQ(back.producerTier, ckpt.producerTier);
}

TEST(Sampling, ProducerTierIsRecordedButArchitecturallyInvisible)
{
    const isa::Program prog = testProgram();
    const Checkpoint fast =
        computeCheckpoint(prog, 4000, FuncTier::Fast);
    const Checkpoint interp =
        computeCheckpoint(prog, 4000, FuncTier::Interpreter);
    EXPECT_EQ(fast.producerTier, FuncTier::Fast);
    EXPECT_EQ(interp.producerTier, FuncTier::Interpreter);
    // Equality deliberately ignores provenance: the tiers are
    // bit-identical, so either store entry serves either consumer.
    EXPECT_TRUE(fast == interp);
    EXPECT_EQ(fast.memHist.size(), interp.memHist.size());
}

TEST(Sampling, WarmCachesReplayChangesTimingNotArchitecture)
{
    const isa::Program prog = testProgram();
    const Checkpoint ck = computeCheckpoint(prog, 4000);
    ASSERT_GT(ck.memHist.size(), 0u);

    SimConfig cold = rgidConfig(4, 64, /*max_insts=*/1500);
    cold.fastForwardInsts = 4000;
    cold.checkpoint = &ck;
    cold.warmBpu = true;
    const RunResult coldR = runSim(prog, cold);

    SimConfig warm = cold;
    warm.warmCaches = true;
    const RunResult warmR = runSim(prog, warm);

    EXPECT_EQ(warmR.insts, coldR.insts) << "warming must not change commits";
    EXPECT_EQ(warmR.archRegs, coldR.archRegs)
        << "warming must not change architectural state";
    EXPECT_LT(warmR.cycles, coldR.cycles)
        << "a warmed window must run faster than a cold-cache one";

    // Determinism: the same warmed config twice is bit-identical.
    const RunResult again = runSim(prog, warm);
    EXPECT_EQ(again.cycles, warmR.cycles);
    EXPECT_TRUE(again.cpi == warmR.cpi);
}

TEST(Sampling, SampledRunIsByteIdenticalAcrossWorkerCounts)
{
    const isa::Program prog = testProgram();
    std::vector<BatchJob> jobs;
    for (const unsigned streams : {2u, 4u}) {
        SimConfig cfg = rgidConfig(streams, 64);
        cfg.samplePeriod = 4000;
        cfg.sampleWindow = 500;
        jobs.push_back({"s" + std::to_string(streams), &prog, cfg, {}});
    }

    const std::vector<SampledRunResult> seq =
        BatchRunner(1).runSampled(jobs);
    const std::vector<SampledRunResult> par =
        BatchRunner(4).runSampled(jobs);
    ASSERT_EQ(seq.size(), jobs.size());
    ASSERT_EQ(par.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        expectSampledIdentical(seq[i], par[i],
                               jobs[i].name + " 1 vs 4 workers");
}

TEST(Sampling, SampledMergeInvariantsHold)
{
    const isa::Program prog = testProgram();
    SimConfig cfg = rgidConfig(4, 64);
    cfg.samplePeriod = 4000;
    cfg.sampleWindow = 500;
    const SampledRunResult r =
        BatchRunner(2).runSampled({{"bfs", &prog, cfg, {}}}).at(0);

    EXPECT_TRUE(r.halted);
    EXPECT_GT(r.windows, 2u);
    ASSERT_EQ(r.windowResults.size(), r.windows);
    ASSERT_EQ(r.windowOffsets.size(), r.windows);

    Cycle cycles = 0;
    std::uint64_t insts = 0;
    for (std::uint64_t w = 0; w < r.windows; ++w) {
        EXPECT_EQ(r.windowOffsets[w], w * cfg.samplePeriod);
        EXPECT_LE(r.windowResults[w].insts, cfg.sampleWindow);
        cycles += r.windowResults[w].cycles;
        insts += r.windowResults[w].insts;
    }
    EXPECT_EQ(r.cycles, cycles) << "pooled cycles must sum the windows";
    EXPECT_EQ(r.insts, insts) << "pooled insts must sum the windows";
    EXPECT_LE(r.insts, r.totalInsts);
    EXPECT_DOUBLE_EQ(r.ipc, static_cast<double>(insts) /
                                static_cast<double>(cycles));
    EXPECT_EQ(r.ipcEst.n, r.windows)
        << "every window observes an IPC sample";
    // The pooled CPI stack keeps the accounting identity.
    EXPECT_EQ(r.cpi.total(),
              static_cast<std::uint64_t>(r.cycles) * r.dispatchWidth);
}

TEST(Sampling, SampledRunRejectsUnsupportedConfigs)
{
    const isa::Program prog = testProgram();
    auto sampled = [&](auto mutate) {
        SimConfig cfg = rgidConfig(4, 64);
        cfg.samplePeriod = 4000;
        cfg.sampleWindow = 500;
        mutate(cfg);
        return BatchRunner(1).runSampled({{"bad", &prog, cfg, {}}});
    };
    EXPECT_THROW(sampled([](SimConfig &c) { c.sampleWindow = 0; }),
                 std::invalid_argument);
    EXPECT_THROW(sampled([](SimConfig &c) { c.sampleWindow = 4001; }),
                 std::invalid_argument);
    EXPECT_THROW(sampled([](SimConfig &c) { c.samplePeriod = 0; }),
                 std::invalid_argument);
    EXPECT_THROW(sampled([](SimConfig &c) { c.fastForwardInsts = 100; }),
                 std::invalid_argument);
    EXPECT_THROW(sampled([](SimConfig &c) { c.statsInterval = 100; }),
                 std::invalid_argument);
    EXPECT_THROW(sampled([](SimConfig &c) { c.maxCycles = 1000; }),
                 std::invalid_argument);
    EXPECT_THROW(sampled([](SimConfig &c) { c.profiling = true; }),
                 std::invalid_argument);
}

TEST(IntervalFlush, HaltOnBoundaryEmitsNoZeroCycleSample)
{
    // Regression: a run whose final commits land on a tick that does
    // not advance the cycle counter (the halting tick, or a maxCycles
    // stop on an exact interval boundary) used to emit a trailing
    // zero-cycle interval. The residue must fold into the last real
    // interval and the sums must still reconcile.
    const isa::Program prog = testProgram("nested-mispred");
    for (const Cycle interval : {100u, 128u, 250u}) {
        for (const Cycle maxCycles : {0ull, 8ull * interval}) {
            SimConfig cfg = rgidConfig(4, 64);
            cfg.statsInterval = interval;
            cfg.maxCycles = maxCycles;
            const RunResult r = runSim(prog, cfg);
            ASSERT_FALSE(r.intervals.empty());

            Cycle cycleSum = 0;
            std::uint64_t commitSum = 0;
            std::array<std::uint64_t, NumCpiCats> slotSum{};
            for (const IntervalSample &s : r.intervals) {
                EXPECT_GT(s.cycles, 0u)
                    << "zero-cycle interval at " << s.cycleEnd
                    << " (interval " << interval << ", maxCycles "
                    << maxCycles << ")";
                cycleSum += s.cycles;
                commitSum += s.commits;
                for (std::size_t c = 0; c < NumCpiCats; ++c)
                    slotSum[c] += s.cpiSlots[c];
            }
            EXPECT_EQ(cycleSum, r.cycles);
            EXPECT_EQ(commitSum, r.insts);
            EXPECT_EQ(r.intervals.back().cycleEnd, r.cycles);
            for (std::size_t c = 0; c < NumCpiCats; ++c)
                EXPECT_EQ(slotSum[c], r.cpi.slots[c])
                    << "interval CPI slots diverged in category " << c;
        }
    }
}
