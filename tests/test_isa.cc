#include <gtest/gtest.h>

#include "isa/inst.hh"

using namespace mssr;
using namespace mssr::isa;

namespace
{

Inst
make(Op op, ArchReg rd = 0, ArchReg rs1 = 0, ArchReg rs2 = 0,
     std::int64_t imm = 0)
{
    return Inst{op, rd, rs1, rs2, imm};
}

} // namespace

TEST(Isa, Classification)
{
    EXPECT_TRUE(make(Op::LD).isLoad());
    EXPECT_TRUE(make(Op::SB).isStore());
    EXPECT_TRUE(make(Op::BEQ).isCondBranch());
    EXPECT_TRUE(make(Op::JAL).isJump());
    EXPECT_TRUE(make(Op::JALR).isControl());
    EXPECT_FALSE(make(Op::ADD).isControl());
    EXPECT_TRUE(make(Op::HALT).isHalt());
}

TEST(Isa, SourceAndDestPresence)
{
    EXPECT_TRUE(make(Op::ADD, 1, 2, 3).hasRs1());
    EXPECT_TRUE(make(Op::ADD, 1, 2, 3).hasRs2());
    EXPECT_FALSE(make(Op::ADDI, 1, 2).hasRs2());
    EXPECT_FALSE(make(Op::LI, 1).hasRs1());
    EXPECT_FALSE(make(Op::JAL, 1).hasRs1());
    EXPECT_TRUE(make(Op::JALR, 1, 2).hasRs1());
    // x0 destination writes are architecturally void.
    EXPECT_FALSE(make(Op::ADD, 0, 1, 2).hasRd());
    EXPECT_TRUE(make(Op::ADD, 5, 1, 2).hasRd());
    // Stores and branches have no destination.
    EXPECT_FALSE(make(Op::SD, 0, 1, 2).hasRd());
    EXPECT_FALSE(make(Op::BEQ, 0, 1, 2).hasRd());
}

TEST(Isa, MemBytes)
{
    EXPECT_EQ(make(Op::LB).memBytes(), 1u);
    EXPECT_EQ(make(Op::LHU).memBytes(), 2u);
    EXPECT_EQ(make(Op::SW).memBytes(), 4u);
    EXPECT_EQ(make(Op::LD).memBytes(), 8u);
    EXPECT_TRUE(make(Op::LW).memSigned());
    EXPECT_FALSE(make(Op::LWU).memSigned());
}

TEST(Isa, FuClasses)
{
    EXPECT_EQ(make(Op::ADD).fuClass(), FuClass::Alu);
    EXPECT_EQ(make(Op::MUL).fuClass(), FuClass::Mul);
    EXPECT_EQ(make(Op::DIV).fuClass(), FuClass::Div);
    EXPECT_EQ(make(Op::BEQ).fuClass(), FuClass::Branch);
    EXPECT_EQ(make(Op::LD).fuClass(), FuClass::Load);
    EXPECT_EQ(make(Op::SD).fuClass(), FuClass::Store);
    EXPECT_EQ(make(Op::NOP).fuClass(), FuClass::None);
}

TEST(Isa, AluSemantics)
{
    EXPECT_EQ(evalAlu(make(Op::ADD), 2, 3), 5u);
    EXPECT_EQ(evalAlu(make(Op::SUB), 2, 3), static_cast<RegVal>(-1));
    EXPECT_EQ(evalAlu(make(Op::SRA), static_cast<RegVal>(-8), 1),
              static_cast<RegVal>(-4));
    EXPECT_EQ(evalAlu(make(Op::SRL), static_cast<RegVal>(-8), 1),
              (~RegVal(0) - 7) >> 1);
    EXPECT_EQ(evalAlu(make(Op::SLT), static_cast<RegVal>(-1), 1), 1u);
    EXPECT_EQ(evalAlu(make(Op::SLTU), static_cast<RegVal>(-1), 1), 0u);
    EXPECT_EQ(evalAlu(make(Op::MUL), 7, 6), 42u);
    EXPECT_EQ(evalAlu(make(Op::ADDI, 0, 0, 0, -5), 3, 0),
              static_cast<RegVal>(-2));
    EXPECT_EQ(evalAlu(make(Op::LI, 0, 0, 0, 123), 0, 0), 123u);
}

TEST(Isa, DivisionEdgeCases)
{
    // RISC-V semantics: div by zero = -1, rem by zero = dividend.
    EXPECT_EQ(evalAlu(make(Op::DIV), 10, 0), ~RegVal(0));
    EXPECT_EQ(evalAlu(make(Op::REM), 10, 0), 10u);
    // INT64_MIN / -1 = INT64_MIN, rem = 0.
    const RegVal int_min = RegVal(1) << 63;
    EXPECT_EQ(evalAlu(make(Op::DIV), int_min, static_cast<RegVal>(-1)),
              int_min);
    EXPECT_EQ(evalAlu(make(Op::REM), int_min, static_cast<RegVal>(-1)), 0u);
    EXPECT_EQ(evalAlu(make(Op::DIV), static_cast<RegVal>(-7), 2),
              static_cast<RegVal>(-3));
}

TEST(Isa, BranchSemantics)
{
    EXPECT_TRUE(evalCondBranch(make(Op::BEQ), 5, 5));
    EXPECT_FALSE(evalCondBranch(make(Op::BNE), 5, 5));
    EXPECT_TRUE(evalCondBranch(make(Op::BLT), static_cast<RegVal>(-1), 0));
    EXPECT_FALSE(evalCondBranch(make(Op::BLTU), static_cast<RegVal>(-1), 0));
    EXPECT_TRUE(evalCondBranch(make(Op::BGEU), static_cast<RegVal>(-1), 0));
}

TEST(Isa, Targets)
{
    EXPECT_EQ(evalTarget(make(Op::JAL, 1, 0, 0, 16), 0x1000, 0), 0x1010u);
    EXPECT_EQ(evalTarget(make(Op::JALR, 1, 2, 0, 5), 0x1000, 0x2000),
              0x2004u); // low bit cleared
    EXPECT_EQ(evalTarget(make(Op::BEQ, 0, 1, 2, -8), 0x1000, 0), 0xff8u);
}

TEST(Isa, Disassembly)
{
    EXPECT_EQ(disasm(make(Op::ADD, 10, 11, 12), 0), "add a0, a1, a2");
    EXPECT_EQ(disasm(make(Op::LD, 5, 2, 0, 16), 0), "ld t0, 16(sp)");
    EXPECT_EQ(disasm(make(Op::SD, 0, 2, 5, 8), 0), "sd t0, 8(sp)");
    EXPECT_EQ(disasm(make(Op::HALT), 0), "halt");
}
