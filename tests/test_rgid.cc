#include <gtest/gtest.h>

#include "reuse/rgid.hh"

using namespace mssr;

TEST(Rgid, MonotonicPerRegister)
{
    RgidAllocator alloc(6);
    EXPECT_EQ(alloc.alloc(10), 1u);
    EXPECT_EQ(alloc.alloc(10), 2u);
    EXPECT_EQ(alloc.alloc(11), 1u); // independent counter
    EXPECT_EQ(alloc.alloc(10), 3u);
    EXPECT_EQ(alloc.next(10), 4u);
}

TEST(Rgid, WindowSizeFollowsBitWidth)
{
    EXPECT_EQ(RgidAllocator(6).window(), 62u); // 2^6 - 2
    EXPECT_EQ(RgidAllocator(4).window(), 14u);
    EXPECT_EQ(RgidAllocator(8).window(), 254u);
}

TEST(Rgid, FreshRgidsAreInWindow)
{
    RgidAllocator alloc(6);
    const Rgid r = alloc.alloc(5);
    EXPECT_TRUE(alloc.inWindow(5, r));
}

TEST(Rgid, OldGenerationsFallOutOfWindow)
{
    RgidAllocator alloc(4); // window = 14 generations
    const Rgid old = alloc.alloc(3);
    for (int i = 0; i < 13; ++i)
        alloc.alloc(3);
    EXPECT_TRUE(alloc.inWindow(3, old)); // exactly at the edge
    alloc.alloc(3);
    EXPECT_FALSE(alloc.inWindow(3, old)); // a 4-bit tag has wrapped
    // Other registers' windows are unaffected.
    const Rgid other = alloc.alloc(7);
    EXPECT_TRUE(alloc.inWindow(7, other));
}

TEST(Rgid, WindowTracksPerRegisterIndependently)
{
    RgidAllocator alloc(4);
    const Rgid a = alloc.alloc(1);
    const Rgid b = alloc.alloc(2);
    for (int i = 0; i < 20; ++i)
        alloc.alloc(1); // exhaust reg 1's window only
    EXPECT_FALSE(alloc.inWindow(1, a));
    EXPECT_TRUE(alloc.inWindow(2, b));
}

TEST(Rgid, InvalidWidthRejected)
{
    EXPECT_THROW(RgidAllocator(1), SimPanic);
    EXPECT_THROW(RgidAllocator(17), SimPanic);
}
