/**
 * Hardened environment-variable parsing: every numeric/boolean knob
 * (MSSR_SCALE, MSSR_ITERS, MSSR_SEED, MSSR_INTERVAL, MSSR_FF,
 * MSSR_PROFILE, ...) follows the MSSR_JOBS contract -- unset uses the
 * default, garbage or out-of-range values warn on stderr and fall
 * back, valid values parse exactly. The seed fed these through
 * atoi(), so "12x" silently ran at scale 12 and "abc" at scale 0.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/argparse.hh"
#include "workloads/registry.hh"

using namespace mssr;

namespace
{

/** Scoped setenv/unsetenv so tests cannot leak into each other. */
class EnvGuard
{
  public:
    explicit EnvGuard(const char *name) : name_(name) { unsetenv(name); }
    ~EnvGuard() { unsetenv(name_); }

    void
    set(const char *value)
    {
        setenv(name_, value, 1);
    }

  private:
    const char *name_;
};

TEST(EnvParseTest, EnvU64UnsetUsesFallback)
{
    EnvGuard guard("MSSR_TEST_U64");
    EXPECT_EQ(123u, envU64("MSSR_TEST_U64", 123));
}

TEST(EnvParseTest, EnvU64ParsesValidValues)
{
    EnvGuard guard("MSSR_TEST_U64");
    guard.set("42");
    EXPECT_EQ(42u, envU64("MSSR_TEST_U64", 0));
    guard.set("0");
    EXPECT_EQ(0u, envU64("MSSR_TEST_U64", 7));
}

TEST(EnvParseTest, EnvU64RejectsGarbage)
{
    EnvGuard guard("MSSR_TEST_U64");
    for (const char *bad : {"abc", "12x", "-3", "1.5", "", " 4", "0x10"}) {
        guard.set(bad);
        testing::internal::CaptureStderr();
        EXPECT_EQ(99u, envU64("MSSR_TEST_U64", 99)) << "input: " << bad;
        const std::string err = testing::internal::GetCapturedStderr();
        EXPECT_NE(std::string::npos, err.find("warn: ")) << "input: " << bad;
        EXPECT_NE(std::string::npos, err.find("MSSR_TEST_U64"))
            << "input: " << bad;
    }
}

TEST(EnvParseTest, EnvU64EnforcesRange)
{
    EnvGuard guard("MSSR_TEST_U64");
    guard.set("0");
    testing::internal::CaptureStderr();
    EXPECT_EQ(10u, envU64("MSSR_TEST_U64", 10, 1, 30));
    EXPECT_NE(std::string::npos,
              testing::internal::GetCapturedStderr().find("warn: "));

    guard.set("31");
    testing::internal::CaptureStderr();
    EXPECT_EQ(10u, envU64("MSSR_TEST_U64", 10, 1, 30));
    EXPECT_NE(std::string::npos,
              testing::internal::GetCapturedStderr().find("warn: "));

    guard.set("30");
    EXPECT_EQ(30u, envU64("MSSR_TEST_U64", 10, 1, 30));
}

TEST(EnvParseTest, EnvFlagContract)
{
    EnvGuard guard("MSSR_TEST_FLAG");
    EXPECT_FALSE(envFlag("MSSR_TEST_FLAG")) << "unset is off";
    for (const char *on : {"1", "true", "yes", "on"}) {
        guard.set(on);
        EXPECT_TRUE(envFlag("MSSR_TEST_FLAG")) << "input: " << on;
    }
    for (const char *off : {"0", "false", "no", "off", ""}) {
        guard.set(off);
        EXPECT_FALSE(envFlag("MSSR_TEST_FLAG")) << "input: " << off;
    }
    guard.set("banana");
    testing::internal::CaptureStderr();
    EXPECT_FALSE(envFlag("MSSR_TEST_FLAG")) << "garbage treated as unset";
    const std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(std::string::npos, err.find("warn: "));
    EXPECT_NE(std::string::npos, err.find("MSSR_TEST_FLAG"));
}

TEST(EnvParseTest, WorkloadScaleRejectsGarbage)
{
    EnvGuard scale("MSSR_SCALE");
    EnvGuard iters("MSSR_ITERS");
    EnvGuard seed("MSSR_SEED");
    const workloads::WorkloadScale defaults;

    scale.set("12x");
    iters.set("abc");
    seed.set("-1");
    testing::internal::CaptureStderr();
    const workloads::WorkloadScale parsed = workloads::WorkloadScale::fromEnv();
    const std::string err = testing::internal::GetCapturedStderr();

    EXPECT_EQ(defaults.graphScale, parsed.graphScale);
    EXPECT_EQ(defaults.iterations, parsed.iterations);
    EXPECT_EQ(defaults.seed, parsed.seed);
    EXPECT_NE(std::string::npos, err.find("MSSR_SCALE"));
    EXPECT_NE(std::string::npos, err.find("MSSR_ITERS"));
    EXPECT_NE(std::string::npos, err.find("MSSR_SEED"));
}

TEST(EnvParseTest, WorkloadScaleParsesValidValues)
{
    EnvGuard scale("MSSR_SCALE");
    EnvGuard iters("MSSR_ITERS");
    EnvGuard seed("MSSR_SEED");

    scale.set("8");
    iters.set("500");
    seed.set("77");
    const workloads::WorkloadScale parsed = workloads::WorkloadScale::fromEnv();
    EXPECT_EQ(8u, parsed.graphScale);
    EXPECT_EQ(500u, parsed.iterations);
    EXPECT_EQ(77u, parsed.seed);
}

TEST(EnvParseTest, WorkloadScaleEnforcesScaleBounds)
{
    EnvGuard scale("MSSR_SCALE");
    const workloads::WorkloadScale defaults;

    // graphScale is a log2 vertex count; 31+ would overflow the graph
    // generator, 0 is degenerate. Both fall back with a warning.
    scale.set("0");
    testing::internal::CaptureStderr();
    EXPECT_EQ(defaults.graphScale,
              workloads::WorkloadScale::fromEnv().graphScale);
    EXPECT_NE(std::string::npos,
              testing::internal::GetCapturedStderr().find("warn: "));

    scale.set("64");
    testing::internal::CaptureStderr();
    EXPECT_EQ(defaults.graphScale,
              workloads::WorkloadScale::fromEnv().graphScale);
    EXPECT_NE(std::string::npos,
              testing::internal::GetCapturedStderr().find("warn: "));
}

} // namespace
