#include <gtest/gtest.h>

#include "ri/integration_table.hh"

using namespace mssr;

namespace
{

class RiTest : public ::testing::Test
{
  protected:
    RiTest() : freeList(64, 32) {}

    void
    build(unsigned sets = 4, unsigned ways = 2)
    {
        cfg.sets = sets;
        cfg.ways = ways;
        table = std::make_unique<IntegrationTable>(cfg, freeList);
    }

    DynInstPtr
    squashedAlu(SeqNum seq, Addr pc, ArchReg rd, ArchReg rs1,
                PhysReg src_preg)
    {
        auto inst = std::make_shared<DynInst>();
        inst->seq = seq;
        inst->pc = pc;
        inst->si = isa::Inst{isa::Op::ADDI, rd, rs1, 0, 1};
        inst->src[0] = src_preg;
        inst->dst = freeList.alloc();
        inst->executed = true;
        return inst;
    }

    DynInstPtr
    freshCopy(const DynInstPtr &other, PhysReg src_preg)
    {
        auto inst = std::make_shared<DynInst>();
        inst->seq = other->seq + 1000;
        inst->pc = other->pc;
        inst->si = other->si;
        inst->src[0] = src_preg;
        return inst;
    }

    RegIntConfig cfg;
    FreeList freeList;
    std::unique_ptr<IntegrationTable> table;
};

} // namespace

TEST_F(RiTest, InsertionReservesAndIntegrationAdopts)
{
    build();
    auto squashed = squashedAlu(11, 0x2000, 5, 6, /*src preg*/ 6);
    const PhysReg preg = squashed->dst;
    table->onBranchSquash({squashed});
    EXPECT_EQ(freeList.state(preg), PregState::Reserved);

    auto incoming = freshCopy(squashed, 6);
    const PhysReg cur[2] = {6, InvalidPhysReg};
    const IntegrationAdvice advice = table->tryIntegrate(incoming, cur);
    EXPECT_TRUE(advice.reuse);
    EXPECT_EQ(advice.destPreg, preg);
    EXPECT_EQ(freeList.state(preg), PregState::InFlight);
    // The entry is consumed: a second lookup misses.
    EXPECT_FALSE(table->tryIntegrate(incoming, cur).reuse);
}

TEST_F(RiTest, SourcePregMismatchMisses)
{
    build();
    auto squashed = squashedAlu(11, 0x2000, 5, 6, 6);
    table->onBranchSquash({squashed});
    auto incoming = freshCopy(squashed, 40); // different physical name
    const PhysReg cur[2] = {40, InvalidPhysReg};
    EXPECT_FALSE(table->tryIntegrate(incoming, cur).reuse);
}

TEST_F(RiTest, ConflictReplacementCountsAndFrees)
{
    build(/*sets*/ 1, /*ways*/ 1);
    auto a = squashedAlu(11, 0x2000, 5, 6, 6);
    auto b = squashedAlu(12, 0x2010, 7, 8, 8); // same (only) set
    const PhysReg pa = a->dst;
    table->onBranchSquash({a});
    table->onBranchSquash({b});
    EXPECT_EQ(freeList.state(pa), PregState::Free); // evicted
    EXPECT_EQ(freeList.state(b->dst), PregState::Reserved);
    std::uint64_t total = 0;
    for (auto c : table->replacementCounts())
        total += c;
    EXPECT_EQ(total, 1u);
}

TEST_F(RiTest, TransitiveInvalidationCascades)
{
    build(/*sets*/ 4, /*ways*/ 2);
    // Chain: b sources a's destination; c sources b's destination.
    auto a = squashedAlu(11, 0x2000, 5, 6, 6);
    auto b = squashedAlu(12, 0x2004, 7, 5, a->dst);
    auto c = squashedAlu(13, 0x2008, 8, 7, b->dst);
    table->onBranchSquash({a, b, c});
    EXPECT_EQ(freeList.state(a->dst), PregState::Reserved);
    // a's destination preg gets reallocated by rename: the whole
    // dependent chain of entries must be invalidated (section 3.7.2).
    freeList.release(a->dst); // entry eviction path frees it first
    table->onPregReallocated(a->dst);
    EXPECT_EQ(freeList.state(b->dst), PregState::Free);
    EXPECT_EQ(freeList.state(c->dst), PregState::Free);
}

TEST_F(RiTest, UnexecutedSquashedInstsAreReleasedNotInserted)
{
    build();
    auto squashed = squashedAlu(11, 0x2000, 5, 6, 6);
    squashed->executed = false;
    const PhysReg preg = squashed->dst;
    table->onBranchSquash({squashed});
    EXPECT_EQ(freeList.state(preg), PregState::Free);
}

TEST_F(RiTest, ImmediateMustMatch)
{
    build();
    auto squashed = squashedAlu(11, 0x2000, 5, 6, 6);
    table->onBranchSquash({squashed});
    auto incoming = freshCopy(squashed, 6);
    incoming->si.imm = 2; // same pc shape, different immediate
    const PhysReg cur[2] = {6, InvalidPhysReg};
    EXPECT_FALSE(table->tryIntegrate(incoming, cur).reuse);
}

TEST_F(RiTest, LoadsNeedVerification)
{
    build();
    auto load = std::make_shared<DynInst>();
    load->seq = 11;
    load->pc = 0x2000;
    load->si = isa::Inst{isa::Op::LD, 5, 6, 0, 8};
    load->src[0] = 6;
    load->dst = freeList.alloc();
    load->executed = true;
    load->memAddr = 0x8000;
    table->onBranchSquash({load});
    auto incoming = freshCopy(load, 6);
    const PhysReg cur[2] = {6, InvalidPhysReg};
    const IntegrationAdvice advice = table->tryIntegrate(incoming, cur);
    EXPECT_TRUE(advice.reuse);
    EXPECT_TRUE(advice.needVerify);
    EXPECT_EQ(advice.memAddr, 0x8000u);
}

TEST_F(RiTest, ReclaimOneEvictsLru)
{
    build();
    auto a = squashedAlu(11, 0x2000, 5, 6, 6);
    auto b = squashedAlu(12, 0x2100, 7, 8, 8);
    table->onBranchSquash({a, b});
    EXPECT_TRUE(table->reclaimOne());
    EXPECT_EQ(freeList.state(a->dst), PregState::Free); // oldest insert
    EXPECT_EQ(freeList.state(b->dst), PregState::Reserved);
    EXPECT_TRUE(table->reclaimOne());
    EXPECT_FALSE(table->reclaimOne()); // empty now
}

TEST_F(RiTest, InvalidateAllReleasesEverything)
{
    build();
    auto a = squashedAlu(11, 0x2000, 5, 6, 6);
    table->onBranchSquash({a});
    table->invalidateAll();
    EXPECT_EQ(freeList.state(a->dst), PregState::Free);
}
