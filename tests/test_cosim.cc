/**
 * Co-simulation property tests: the O3 core (with any squash-reuse
 * scheme) must produce exactly the functional emulator's architectural
 * registers and memory. This is the master correctness invariant of
 * squash reuse -- reusing wrong-path results must never change
 * architectural state.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "cosim_triage.hh"
#include "driver/sim_runner.hh"
#include "isa/assembler.hh"
#include "sim/func_emu.hh"
#include "workloads/micro.hh"
#include "workloads/speclike.hh"

using namespace mssr;

namespace
{

/** Runs both models and asserts identical architectural results. */
void
expectCosimMatch(const isa::Program &prog, const SimConfig &cfg,
                 const std::string &what)
{
    Memory refMem;
    FuncEmu emu(prog, refMem);
    emu.run(5'000'000);
    ASSERT_TRUE(emu.halted()) << what << ": reference did not halt";

    SimConfig traced = cfg;
    CosimTriage triage(what, traced); // dumps last events on divergence
    Memory o3Mem;
    const RunResult r = runSim(prog, traced, &o3Mem);
    ASSERT_TRUE(r.halted) << what << ": O3 did not halt";
    EXPECT_EQ(r.insts, emu.instret()) << what << ": instruction count";
    for (unsigned reg = 0; reg < NumArchRegs; ++reg) {
        EXPECT_EQ(r.archRegs[reg], emu.reg(static_cast<ArchReg>(reg)))
            << what << ": arch reg " << isa::regName(
                   static_cast<ArchReg>(reg));
    }
    EXPECT_TRUE(o3Mem.equals(refMem)) << what << ": memory image differs";
}

/**
 * Random program generator: data-dependent branches, loads/stores to
 * a small arena, ALU chains -- all structured as a loop so wrong paths
 * reconverge and squash reuse gets exercised.
 */
isa::Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    std::ostringstream os;
    const unsigned iters = 60 + rng.below(60);
    os << "    li s0, 0\n";
    os << "    li s1, " << iters << "\n";
    os << "    la s2, arena\n";
    os << "    li s3, 0\n";
    os << "outer:\n";
    // A hash so branch outcomes are data dependent.
    os << "    addi t0, s0, " << (1 + rng.below(1 << 20)) << "\n";
    os << "    slli t1, t0, 13\n    xor t0, t0, t1\n";
    os << "    srli t1, t0, 7\n    xor t0, t0, t1\n";
    const unsigned blocks = 2 + rng.below(4);
    for (unsigned b = 0; b < blocks; ++b) {
        const std::string skip = "skip" + std::to_string(b);
        switch (rng.below(5)) {
          case 0: // conditional ALU block
            os << "    andi t2, t0, " << (1 << rng.below(4)) << "\n";
            os << "    beqz t2, " << skip << "\n";
            os << "    addi s3, s3, " << rng.below(100) << "\n";
            os << "    xori s4, s4, " << rng.below(100) << "\n";
            os << skip << ":\n";
            os << "    add s5, s3, s4\n";
            break;
          case 1: // store then dependent load
            os << "    andi t2, t0, 56\n";
            os << "    add t3, s2, t2\n";
            os << "    sd s3, 0(t3)\n";
            os << "    ld s6, 0(t3)\n";
            break;
          case 2: // conditional store (memory on one path only)
            os << "    andi t2, t0, " << (1 << rng.below(4)) << "\n";
            os << "    bnez t2, " << skip << "\n";
            os << "    slli t3, s0, 3\n";
            os << "    andi t3, t3, 248\n";
            os << "    add t3, t3, s2\n";
            os << "    sd t0, 0(t3)\n";
            os << skip << ":\n";
            os << "    srli t4, t0, 3\n";
            os << "    andi t4, t4, 248\n";
            os << "    add t4, t4, s2\n";
            os << "    ld s7, 0(t4)\n";
            os << "    add s3, s3, s7\n";
            break;
          case 3: // mul/div latency
            os << "    ori t5, t0, 1\n";
            os << "    mul s8, s3, t5\n";
            os << "    div s9, s8, t5\n";
            break;
          default: // nested branches (multi-stream shapes)
            os << "    andi t2, t0, 1\n";
            os << "    beqz t2, " << skip << "a\n";
            os << "    andi t3, t0, 2\n";
            os << "    beqz t3, " << skip << "b\n";
            os << "    addi s10, s10, 1\n";
            os << skip << "b:\n";
            os << "    addi s11, s11, 2\n";
            os << skip << "a:\n";
            os << "    add s4, s10, s11\n";
            break;
        }
    }
    os << "    addi s0, s0, 1\n";
    os << "    blt s0, s1, outer\n";
    os << "    halt\n";

    isa::Program prog;
    prog.allocData("arena", 4096);
    isa::assemble(prog, os.str());
    return prog;
}

} // namespace

TEST(Cosim, MicrobenchBaseline)
{
    workloads::MicroParams params;
    params.iterations = 150;
    expectCosimMatch(workloads::makeNestedMispred(params), baselineConfig(),
                     "nested baseline");
    expectCosimMatch(workloads::makeLinearMispred(params), baselineConfig(),
                     "linear baseline");
}

TEST(Cosim, MicrobenchRgidReuse)
{
    workloads::MicroParams params;
    params.iterations = 150;
    expectCosimMatch(workloads::makeNestedMispred(params), rgidConfig(4, 64),
                     "nested rgid");
    expectCosimMatch(workloads::makeLinearMispred(params), rgidConfig(4, 64),
                     "linear rgid");
}

TEST(Cosim, MicrobenchRegisterIntegration)
{
    workloads::MicroParams params;
    params.iterations = 150;
    expectCosimMatch(workloads::makeNestedMispred(params),
                     regIntConfig(64, 4), "nested ri");
    expectCosimMatch(workloads::makeLinearMispred(params),
                     regIntConfig(64, 4), "linear ri");
}

TEST(Cosim, RandomProgramsBaseline)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed)
        expectCosimMatch(randomProgram(seed), baselineConfig(),
                         "random baseline seed " + std::to_string(seed));
}

TEST(Cosim, RandomProgramsRgid)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed)
        expectCosimMatch(randomProgram(seed), rgidConfig(4, 64),
                         "random rgid seed " + std::to_string(seed));
}

TEST(Cosim, RandomProgramsRegInt)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed)
        expectCosimMatch(randomProgram(seed), regIntConfig(64, 4),
                         "random ri seed " + std::to_string(seed));
}

TEST(Cosim, XzLikeStressesLoadVerification)
{
    workloads::SpecParams params;
    params.iterations = 200;
    expectCosimMatch(workloads::makeXzLike(params), rgidConfig(4, 64),
                     "xz rgid");
}
