/**
 * @file
 * Divergence triage for the co-simulation property tests: attaches a
 * bounded Tracer to the O3 run and, if the enclosing gtest assertion
 * block failed, dumps the last N pipeline events to stderr on scope
 * exit. A cosim mismatch report ("arch reg s3 differs") is otherwise
 * the least debuggable failure in the suite -- the triage dump shows
 * what the pipeline was doing (reuse verdicts, squashes, verify
 * outcomes) right before the architectural state went wrong.
 *
 * Tracing must never change simulation results (asserted by
 * test_trace.cc), so leaving it attached in every cosim run is free
 * correctness-wise and keeps the instrumentation honest.
 */

#ifndef MSSR_TESTS_COSIM_TRIAGE_HH
#define MSSR_TESTS_COSIM_TRIAGE_HH

#include <gtest/gtest.h>

#include <iostream>
#include <string>

#include "common/config.hh"
#include "common/trace.hh"

namespace mssr
{

class CosimTriage
{
  public:
    /** Attaches an event tracer to @p cfg for the upcoming run. */
    CosimTriage(const std::string &what, SimConfig &cfg)
        : what_(what),
          tracer_(1 << 14),
          failedBefore_(::testing::Test::HasFatalFailure() ||
                        ::testing::Test::HasNonfatalFailure())
    {
        cfg.tracer = &tracer_;
    }

    ~CosimTriage()
    {
        // Dump only for a failure that appeared during this run, not
        // one carried over from an earlier iteration of the test.
        const bool failedNow = ::testing::Test::HasFatalFailure() ||
                               ::testing::Test::HasNonfatalFailure();
        if (!failedNow || failedBefore_)
            return;
        std::cerr << "=== cosim divergence triage: " << what_
                  << " (last " << kDumpEvents << " of "
                  << tracer_.recorded() << " events) ===\n";
        tracer_.writeText(std::cerr, kDumpEvents);
        std::cerr << "=== end triage: " << what_ << " ===\n";
    }

    CosimTriage(const CosimTriage &) = delete;
    CosimTriage &operator=(const CosimTriage &) = delete;

  private:
    static constexpr std::size_t kDumpEvents = 64;

    std::string what_;
    Tracer tracer_;
    bool failedBefore_;
};

} // namespace mssr

#endif // MSSR_TESTS_COSIM_TRIAGE_HH
