/**
 * Fast-forward / checkpoint engine: a detailed run whose functional
 * prefix was computed live, shared across a batch, or reloaded from an
 * mssr-ckpt-v2 file must produce byte-identical results -- cycles,
 * stats, CPI stack, funnel, intervals, profile and architectural
 * registers -- at any worker count. Also covers the warm-BPU replay
 * path, cache-key validation and the BatchRunner's shared warm-up
 * attribution.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "driver/batch_runner.hh"
#include "driver/sim_runner.hh"
#include "sim/checkpoint.hh"
#include "workloads/registry.hh"

using namespace mssr;

namespace
{

constexpr std::uint64_t FfInsts = 4000;
constexpr std::uint64_t DetailedInsts = 6000;

isa::Program
testProgram(const std::string &name = "bfs")
{
    workloads::WorkloadScale scale;
    scale.graphScale = 6;
    scale.iterations = 120;
    return workloads::buildWorkload(name, scale);
}

/** Every deterministic field must match bit for bit. */
void
expectIdentical(const RunResult &a, const RunResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.insts, b.insts) << what;
    EXPECT_EQ(a.ffInsts, b.ffInsts) << what;
    EXPECT_EQ(a.halted, b.halted) << what;
    EXPECT_EQ(a.archRegs, b.archRegs) << what;
    EXPECT_TRUE(a.cpi == b.cpi) << what << " CPI stack";
    EXPECT_TRUE(a.funnel == b.funnel) << what << " reuse funnel";
    ASSERT_EQ(a.intervals.size(), b.intervals.size()) << what;
    for (std::size_t i = 0; i < a.intervals.size(); ++i) {
        EXPECT_EQ(a.intervals[i].cycleEnd, b.intervals[i].cycleEnd)
            << what << " interval " << i;
        EXPECT_EQ(a.intervals[i].commits, b.intervals[i].commits)
            << what << " interval " << i;
        EXPECT_EQ(a.intervals[i].reuseHits, b.intervals[i].reuseHits)
            << what << " interval " << i;
    }
    for (const auto &[key, value] : a.stats.scalars())
        EXPECT_EQ(value, b.stats.get(key)) << what << " stat " << key;
    {
        std::ostringstream pa, pb;
        writeJson(pa, a.profile);
        writeJson(pb, b.profile);
        EXPECT_EQ(pa.str(), pb.str()) << what << " profile";
    }
}

SimConfig
ffConfig(bool warm = false)
{
    SimConfig cfg = rgidConfig(4, 64, DetailedInsts);
    cfg.fastForwardInsts = FfInsts;
    cfg.warmBpu = warm;
    cfg.statsInterval = 1000;
    cfg.profiling = true;
    return cfg;
}

} // namespace

TEST(Checkpoint, LiveFfVsFileRestoredAreByteIdentical)
{
    const isa::Program prog = testProgram();

    // Live in-process fast-forward (no checkpoint involved).
    const RunResult live = runSim(prog, ffConfig());
    EXPECT_EQ(live.ffInsts, FfInsts);
    EXPECT_FALSE(live.ckptHit);
    EXPECT_GT(live.insts, 1000u); // a real detailed region followed

    // Same region through a checkpoint file round-trip.
    const std::string path = testing::TempDir() +
                             checkpointFileName(prog.hash(), FfInsts);
    writeCheckpoint(path, computeCheckpoint(prog, FfInsts));
    const Checkpoint fromDisk = readCheckpoint(path);
    std::filesystem::remove(path);
    SimConfig cfg = ffConfig();
    cfg.checkpoint = &fromDisk;
    const RunResult restored = runSim(prog, cfg);
    EXPECT_TRUE(restored.ckptHit);

    expectIdentical(live, restored, "live vs file-restored");
}

TEST(Checkpoint, WarmBpuIsDeterministicAndIdenticalAcrossPaths)
{
    const isa::Program prog = testProgram();
    const RunResult live = runSim(prog, ffConfig(/*warm=*/true));

    const Checkpoint ck = computeCheckpoint(prog, FfInsts);
    SimConfig cfg = ffConfig(/*warm=*/true);
    cfg.checkpoint = &ck;
    const RunResult shared = runSim(prog, cfg);
    expectIdentical(live, shared, "warm live vs warm shared");

    // Warming must actually replay history: the prefix records
    // branches, so the warm run differs from the cold one somewhere
    // (same instructions, different speculation).
    const RunResult cold = runSim(prog, ffConfig(/*warm=*/false));
    EXPECT_EQ(cold.insts, live.insts);
    EXPECT_NE(cold.cycles, live.cycles)
        << "warm-BPU replay had no effect at all";
}

TEST(Checkpoint, BatchSharedWarmupIdenticalAcrossWorkerCounts)
{
    // The acceptance bar: jobs sharing a (program, K) prefix through
    // the BatchRunner cache are byte-identical to standalone runs, at
    // 1 worker and at 4 (MSSR_JOBS equivalents).
    const isa::Program prog = testProgram();
    std::vector<BatchJob> jobs;
    for (const unsigned streams : {1u, 2u, 4u}) {
        SimConfig cfg = rgidConfig(streams, 64, DetailedInsts);
        cfg.fastForwardInsts = FfInsts;
        cfg.statsInterval = 1000;
        cfg.profiling = true;
        jobs.push_back({"s" + std::to_string(streams), &prog, cfg, {}});
    }

    const std::vector<RunResult> seq = BatchRunner(1).run(jobs);
    const std::vector<RunResult> par = BatchRunner(4).run(jobs);
    ASSERT_EQ(seq.size(), jobs.size());
    ASSERT_EQ(par.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        expectIdentical(seq[i], par[i], jobs[i].name + " 1 vs 4 workers");
        // ...and identical to a standalone run of the same config.
        const RunResult solo = runSim(prog, jobs[i].config);
        expectIdentical(seq[i], solo, jobs[i].name + " batch vs solo");
    }

    // Attribution: the first job of the group paid for the prefix, the
    // rest are in-memory hits.
    EXPECT_FALSE(seq[0].ckptHit);
    EXPECT_TRUE(seq[1].ckptHit);
    EXPECT_TRUE(seq[2].ckptHit);
}

TEST(Checkpoint, BatchDiskCacheHitsOnSecondRun)
{
    const isa::Program prog = testProgram();
    const std::string dir =
        testing::TempDir() + "mssr_ckpt_cache_test";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    std::vector<BatchJob> jobs{
        {"rgid", &prog, ffConfig(), {}},
    };
    BatchRunner runner(1);
    runner.setCheckpointDir(dir);

    const std::vector<RunResult> miss = runner.run(jobs);
    EXPECT_FALSE(miss[0].ckptHit);
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/" + checkpointFileName(prog.hash(), FfInsts)));

    const std::vector<RunResult> hit = runner.run(jobs);
    EXPECT_TRUE(hit[0].ckptHit);
    expectIdentical(miss[0], hit[0], "disk miss vs disk hit");
    std::filesystem::remove_all(dir);
}

TEST(Checkpoint, MismatchedCheckpointIsRejected)
{
    const isa::Program prog = testProgram("bfs");
    const isa::Program other = testProgram("gobmk");
    const Checkpoint ck = computeCheckpoint(other, FfInsts);

    SimConfig cfg = ffConfig();
    cfg.checkpoint = &ck;
    EXPECT_THROW(runSim(prog, cfg), SerializeError) << "wrong program";

    const Checkpoint shortCk = computeCheckpoint(prog, FfInsts / 2);
    cfg.checkpoint = &shortCk;
    EXPECT_THROW(runSim(prog, cfg), SerializeError) << "wrong K";
}

TEST(Checkpoint, PrefixPlusDetailedMatchesUnforwardedArchitecture)
{
    // Architectural correctness: a fast-forwarded run that executes
    // the remainder to HALT must end with the same architectural
    // registers as a full detailed run from reset.
    const isa::Program prog = testProgram();
    const RunResult full = runSim(prog, rgidConfig(4, 64));
    SimConfig cfg = rgidConfig(4, 64);
    cfg.fastForwardInsts = FfInsts;
    const RunResult ff = runSim(prog, cfg);
    EXPECT_TRUE(ff.halted);
    EXPECT_EQ(ff.archRegs, full.archRegs);
    EXPECT_EQ(ff.ffInsts + ff.insts, full.insts)
        << "prefix + detailed commits != total program length";
}

TEST(Checkpoint, ProgramHashDiscriminatesAndIsStable)
{
    const isa::Program a1 = testProgram("bfs");
    const isa::Program a2 = testProgram("bfs");
    const isa::Program b = testProgram("gobmk");
    EXPECT_EQ(a1.hash(), a2.hash());
    EXPECT_NE(a1.hash(), b.hash());

    workloads::WorkloadScale scaled;
    scaled.graphScale = 7;
    scaled.iterations = 120;
    const isa::Program a3 = workloads::buildWorkload("bfs", scaled);
    EXPECT_NE(a1.hash(), a3.hash()) << "scale change must change the key";
}
