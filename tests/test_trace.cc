/**
 * Structured pipeline observability: ring-buffer semantics, exporter
 * round-trips through the mini_json reader, determinism of the event
 * stream across batch worker counts, zero allocation while recording,
 * no perturbation of simulation results, and exact reconciliation of
 * interval statistics with the end-of-run scalar counters.
 */

#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <sstream>

#include "common/mini_json.hh"
#include "common/trace.hh"
#include "driver/batch_runner.hh"
#include "driver/sim_runner.hh"
#include "isa/assembler.hh"

using namespace mssr;
using minijson::JsonParser;
using minijson::JsonValue;

namespace
{

/** Hashed hard-to-predict branch loop: plenty of squashes and reuse. */
isa::Program
squashyProgram(int iterations = 300)
{
    std::ostringstream src;
    src << R"(
        li s0, 0
        li s1, )" << iterations << R"(
    loop:
        addi t0, s0, 999
        li t1, -0x61c8864680b583eb
        mul t0, t0, t1
        srli t1, t0, 31
        xor t0, t0, t1
        andi t1, t0, 1
        beqz t1, skip
        addi s2, s2, 1
    skip:
        addi s3, s3, 7
        xori s3, s3, 3
        addi s0, s0, 1
        blt s0, s1, loop
        halt
    )";
    return isa::assembleProgram(src.str());
}

bool
sameEvent(const TraceEvent &a, const TraceEvent &b)
{
    return a.cycle == b.cycle && a.seq == b.seq && a.pc == b.pc &&
           a.arg == b.arg && a.stage == b.stage && a.reuse == b.reuse &&
           a.squash == b.squash;
}

} // namespace

TEST(Tracer, RingWraparoundKeepsNewestEvents)
{
    Tracer t(8);
    EXPECT_EQ(t.capacity(), 8u);
    EXPECT_EQ(t.size(), 0u);

    for (std::uint64_t i = 1; i <= 20; ++i) {
        t.setCycle(i * 10);
        t.record(TraceStage::Fetch, i, 0x1000 + i * 4);
    }
    EXPECT_EQ(t.size(), 8u);
    EXPECT_EQ(t.recorded(), 20u);
    EXPECT_EQ(t.dropped(), 12u);
    // Oldest retained is seq 13, newest seq 20, strictly ordered.
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(t.event(i).seq, 13u + i);
        EXPECT_EQ(t.event(i).cycle, (13u + i) * 10);
        EXPECT_EQ(t.event(i).pc, 0x1000 + (13u + i) * 4);
    }

    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_EQ(t.capacity(), 8u);
    t.record(TraceStage::Commit, 99, 0x42);
    ASSERT_EQ(t.size(), 1u);
    EXPECT_EQ(t.event(0).seq, 99u);

    // Text rendering reports the drop count after wraparound.
    Tracer small(2);
    for (std::uint64_t i = 0; i < 5; ++i)
        small.record(TraceStage::Fetch, i, 0);
    std::ostringstream text;
    small.writeText(text);
    EXPECT_NE(text.str().find("3 older events dropped"),
              std::string::npos);
}

TEST(Tracer, RecordingNeverReallocates)
{
    Tracer t(64);
    const void *buf = t.bufferAddress();
    for (std::uint64_t i = 0; i < 10000; ++i)
        t.record(TraceStage::Writeback, i, i * 4, ReuseOutcome::Reused,
                 SquashReason::None, i);
    EXPECT_EQ(t.bufferAddress(), buf);
    EXPECT_EQ(t.capacity(), 64u);
    EXPECT_EQ(t.recorded(), 10000u);
}

TEST(Tracer, ChromeJsonParsesBack)
{
    const isa::Program prog = squashyProgram();
    Tracer tracer(1 << 15);
    SimConfig cfg = rgidConfig(4, 64);
    cfg.tracer = &tracer;
    runSim(prog, cfg);
    ASSERT_GT(tracer.size(), 0u);

    std::ostringstream os;
    tracer.writeChromeJson(os, "squashy");
    const JsonValue root = JsonParser(os.str()).parse();
    ASSERT_EQ(root.kind, JsonValue::Object);
    const auto events = root.object.find("traceEvents");
    ASSERT_NE(events, root.object.end());
    ASSERT_EQ(events->second.kind, JsonValue::Array);

    std::size_t complete = 0, metadata = 0;
    bool sawProcessName = false;
    for (const JsonValue &e : events->second.array) {
        ASSERT_EQ(e.kind, JsonValue::Object);
        const auto ph = e.object.find("ph");
        ASSERT_NE(ph, e.object.end());
        for (const char *key : {"name", "pid", "tid"})
            EXPECT_NE(e.object.find(key), e.object.end()) << key;
        if (ph->second.string == "X") {
            ++complete;
            const auto args = e.object.find("args");
            ASSERT_NE(args, e.object.end());
            EXPECT_NE(args->second.object.find("seq"),
                      args->second.object.end());
            EXPECT_NE(args->second.object.find("pc"),
                      args->second.object.end());
        } else {
            ASSERT_EQ(ph->second.string, "M");
            ++metadata;
            const auto name = e.object.find("name");
            if (name->second.string == "process_name") {
                sawProcessName = true;
                EXPECT_EQ(e.object.at("args").object.at("name").string,
                          "squashy");
            }
        }
    }
    EXPECT_EQ(complete, tracer.size());
    EXPECT_TRUE(sawProcessName);
    EXPECT_GT(metadata, 0u);

    // Multi-job export: one pid per job.
    Tracer other(16);
    other.record(TraceStage::Fetch, 1, 0x100);
    std::ostringstream multi;
    writeChromeJson(multi, {{"a", &tracer}, {"b", &other}});
    const JsonValue mroot = JsonParser(multi.str()).parse();
    std::set<double> pids;
    for (const JsonValue &e : mroot.object.at("traceEvents").array)
        pids.insert(e.object.at("pid").number);
    EXPECT_EQ(pids, (std::set<double>{0.0, 1.0}));
    // Ring-wraparound accounting: one entry per job, pid order.
    const auto mdrops = mroot.object.find("dropped_events");
    ASSERT_NE(mdrops, mroot.object.end());
    ASSERT_EQ(mdrops->second.array.size(), 2u);
    EXPECT_EQ(mdrops->second.array[0].number,
              static_cast<double>(tracer.dropped()));
    EXPECT_EQ(mdrops->second.array[1].number,
              static_cast<double>(other.dropped()));

    // JSONL: one parseable object per line, with a trailing
    // dropped_events marker.
    std::ostringstream jsonl;
    tracer.writeJsonl(jsonl);
    std::istringstream lines(jsonl.str());
    std::string line;
    std::size_t parsed = 0;
    JsonValue last;
    while (std::getline(lines, line)) {
        last = JsonParser(line).parse();
        EXPECT_EQ(last.kind, JsonValue::Object);
        ++parsed;
    }
    EXPECT_EQ(parsed, tracer.size() + 1);
    const auto jdrops = last.object.find("dropped_events");
    ASSERT_NE(jdrops, last.object.end());
    EXPECT_EQ(jdrops->second.number, static_cast<double>(tracer.dropped()));
}

TEST(Tracer, EventStreamIdenticalAcrossWorkerCounts)
{
    // The per-job event stream must be bit-identical whether the batch
    // runs sequentially or on 4 workers.
    const isa::Program prog = squashyProgram();
    const std::vector<SimConfig> cfgs = {
        rgidConfig(4, 64), rgidConfig(1, 32), baselineConfig(),
        regIntConfig(64, 2)};

    auto runWith = [&](unsigned workers, std::deque<Tracer> &tracers) {
        std::vector<BatchJob> jobs;
        for (const SimConfig &cfg : cfgs) {
            tracers.emplace_back(1 << 14);
            SimConfig jobCfg = cfg;
            jobCfg.tracer = &tracers.back();
            jobs.push_back(
                {"job" + std::to_string(jobs.size()), &prog, jobCfg, {}});
        }
        BatchRunner(workers).run(jobs);
    };

    std::deque<Tracer> seq, par;
    runWith(1, seq);
    runWith(4, par);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t j = 0; j < seq.size(); ++j) {
        ASSERT_EQ(seq[j].recorded(), par[j].recorded()) << "job " << j;
        ASSERT_EQ(seq[j].size(), par[j].size()) << "job " << j;
        for (std::size_t i = 0; i < seq[j].size(); ++i)
            ASSERT_TRUE(sameEvent(seq[j].event(i), par[j].event(i)))
                << "job " << j << " event " << i;
    }
}

TEST(Tracer, TracingDoesNotPerturbSimulation)
{
    // Bit-identical architectural results and counters with tracing on,
    // off, and with a tiny ring that wraps constantly.
    const isa::Program prog = squashyProgram();
    const SimConfig cfg = rgidConfig(4, 64);

    const RunResult off = runSim(prog, cfg);

    Tracer big(1 << 15);
    SimConfig withBig = cfg;
    withBig.tracer = &big;
    const RunResult on = runSim(prog, withBig);

    Tracer tiny(4);
    SimConfig withTiny = cfg;
    withTiny.tracer = &tiny;
    const RunResult wrapped = runSim(prog, withTiny);

    for (const RunResult *r : {&on, &wrapped}) {
        EXPECT_EQ(off.cycles, r->cycles);
        EXPECT_EQ(off.insts, r->insts);
        EXPECT_EQ(off.archRegs, r->archRegs);
        EXPECT_EQ(off.stats.scalars(), r->stats.scalars());
    }
    EXPECT_EQ(big.recorded(), tiny.recorded());
}

TEST(IntervalStats, SumsReconcileWithScalarCounters)
{
    const isa::Program prog = squashyProgram();
    for (const Cycle interval : {64u, 100u, 1u << 20}) {
        SimConfig cfg = rgidConfig(4, 64);
        cfg.statsInterval = interval;
        const RunResult r = runSim(prog, cfg);
        ASSERT_FALSE(r.intervals.empty()) << "interval " << interval;

        Cycle cycles = 0;
        std::uint64_t commits = 0, squashedInsts = 0, squashEvents = 0,
                      reuseHits = 0;
        Cycle prevEnd = 0;
        for (const IntervalSample &s : r.intervals) {
            EXPECT_GT(s.cycleEnd, prevEnd);
            prevEnd = s.cycleEnd;
            EXPECT_GE(s.wpbOccupancy, 0.0);
            EXPECT_LE(s.wpbOccupancy, 1.0);
            EXPECT_GE(s.squashLogOccupancy, 0.0);
            EXPECT_LE(s.squashLogOccupancy, 1.0);
            cycles += s.cycles;
            commits += s.commits;
            squashedInsts += s.squashedInsts;
            squashEvents += s.squashEvents;
            reuseHits += s.reuseHits;
        }
        EXPECT_EQ(cycles, r.cycles) << "interval " << interval;
        EXPECT_EQ(commits, r.insts) << "interval " << interval;
        EXPECT_EQ(squashedInsts,
                  static_cast<std::uint64_t>(
                      r.stats.get("core.squashedInsts")))
            << "interval " << interval;
        EXPECT_EQ(squashEvents,
                  static_cast<std::uint64_t>(
                      r.stats.get("core.squashEvents")))
            << "interval " << interval;
        EXPECT_EQ(reuseHits,
                  static_cast<std::uint64_t>(r.stats.get("reuse.success")))
            << "interval " << interval;
    }
}

TEST(IntervalStats, DisabledByDefault)
{
    const isa::Program prog = squashyProgram(50);
    const RunResult r = runSim(prog, rgidConfig(2, 32));
    EXPECT_TRUE(r.intervals.empty());
}
