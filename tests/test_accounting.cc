/**
 * Cycle-accounting reconciliation: the CPI stack must be a complete,
 * non-overlapping decomposition of every dispatch slot (slots sum to
 * exactly cycles x dispatchWidth -- there is no "other" category to
 * absorb accounting bugs), and the squash-reuse funnel must be
 * monotone and reconcile with the core's own squash/reuse/verify
 * counters. Runs a reuse-heavy workload and a no-reuse baseline so
 * both the salvage path and the all-zero funnel tail are covered.
 */

#include <gtest/gtest.h>

#include "driver/sim_runner.hh"
#include "workloads/registry.hh"

using namespace mssr;

namespace
{

isa::Program
reuseHeavyProgram()
{
    workloads::WorkloadScale scale;
    scale.iterations = 200;
    return workloads::buildWorkload("nested-mispred", scale);
}

std::uint64_t
killSum(const ReuseFunnel &f)
{
    return f.killKind + f.killNotExecuted + f.killRgid + f.killRgidCapacity;
}

} // namespace

TEST(Accounting, CpiSlotsSumToCyclesTimesWidth)
{
    const isa::Program prog = reuseHeavyProgram();
    for (const SimConfig &cfg :
         {baselineConfig(), rgidConfig(4, 64), regIntConfig(64, 4)}) {
        const RunResult r = runSim(prog, cfg);
        ASSERT_GT(r.cycles, 0u) << toString(cfg.reuseKind);
        EXPECT_EQ(r.cpi.total(),
                  r.cycles * static_cast<std::uint64_t>(r.dispatchWidth))
            << toString(cfg.reuseKind);
        // The exported scalars are the same ledger.
        for (std::size_t i = 0; i < NumCpiCats; ++i) {
            const CpiCat cat = static_cast<CpiCat>(i);
            EXPECT_EQ(r.stats.get(std::string("cpi.") + cpiCatKey(cat)),
                      static_cast<double>(r.cpi[cat]))
                << cpiCatKey(cat);
        }
    }
}

TEST(Accounting, FunnelMonotoneAndReconciled)
{
    const RunResult r = runSim(reuseHeavyProgram(), rgidConfig(4, 64));
    const ReuseFunnel &f = r.funnel;

    // This workload must actually exercise the funnel end to end.
    ASSERT_GT(f.squashed, 0u);
    ASSERT_GT(f.reused, 0u);

    EXPECT_TRUE(f.monotonic());
    for (std::size_t i = 1; i < ReuseFunnel::NumStages; ++i)
        EXPECT_LE(f.stage(i), f.stage(i - 1)) << ReuseFunnel::stageKey(i);

    // Stage algebra is exact: every first-time reuse test either
    // passes a gate or increments exactly one kill counter.
    EXPECT_EQ(f.tested - f.rgidPass, killSum(f));
    EXPECT_EQ(f.rgidPass - f.hazardPass, f.killBloom);
    EXPECT_EQ(f.hazardPass, f.reused);

    // Reconciliation with the core's own counters.
    EXPECT_EQ(static_cast<double>(f.squashed),
              r.stats.get("core.squashedInsts"));
    EXPECT_EQ(static_cast<double>(f.reused), r.stats.get("reuse.success"));
    EXPECT_EQ(static_cast<double>(f.verifyOk), r.stats.get("core.verifyOk"));
    EXPECT_EQ(static_cast<double>(f.verifyFail),
              r.stats.get("core.verifyFailFlushes"));

    // Every reused instruction renamed exactly once as reused, so the
    // salvaged dispatch slots equal the funnel's terminal stage.
    EXPECT_EQ(r.cpi[CpiCat::ReuseSalvaged], f.reused);
}

TEST(Accounting, BaselineFunnelStopsAtSquashed)
{
    const RunResult r = runSim(reuseHeavyProgram(), baselineConfig());
    EXPECT_GT(r.funnel.squashed, 0u);
    for (std::size_t i = 1; i < ReuseFunnel::NumStages; ++i)
        EXPECT_EQ(r.funnel.stage(i), 0u) << ReuseFunnel::stageKey(i);
    EXPECT_EQ(r.cpi[CpiCat::ReuseSalvaged], 0u);
    EXPECT_TRUE(r.funnel.monotonic());
}

TEST(Accounting, RegIntSalvageShowsInCpiStack)
{
    // Register Integration adopts results through a different
    // mechanism (no squash log), so the funnel stages past "squashed"
    // stay zero while the CPI stack still attributes its salvaged
    // slots -- one integration per salvaged dispatch slot.
    const RunResult r = runSim(reuseHeavyProgram(), regIntConfig(64, 4));
    EXPECT_EQ(r.funnel.logged, 0u);
    EXPECT_EQ(static_cast<double>(r.cpi[CpiCat::ReuseSalvaged]),
              r.stats.get("ri.integrations"));
}

TEST(Accounting, IntervalCpiSlotsTelescopeToRunTotal)
{
    SimConfig cfg = rgidConfig(4, 64);
    cfg.statsInterval = 500;
    const RunResult r = runSim(reuseHeavyProgram(), cfg);
    ASSERT_GT(r.intervals.size(), 1u);

    CpiStack sum;
    for (const IntervalSample &s : r.intervals) {
        const CpiStack interval{s.cpiSlots};
        // Each interval's slots decompose that interval's cycles.
        EXPECT_EQ(interval.total(),
                  s.cycles * static_cast<std::uint64_t>(r.dispatchWidth));
        for (std::size_t i = 0; i < NumCpiCats; ++i)
            sum.slots[i] += s.cpiSlots[i];
    }
    // And the interval deltas telescope to the whole-run stack.
    EXPECT_EQ(sum, r.cpi);
}

TEST(Accounting, CpiStackDifferenceAndFractions)
{
    CpiStack a;
    a.charge(CpiCat::Base, 30);
    a.charge(CpiCat::Backpressure, 10);
    CpiStack b = a;
    b.charge(CpiCat::Base, 2);
    b.charge(CpiCat::ReuseSalvaged, 8);

    const CpiStack d = b - a;
    EXPECT_EQ(d[CpiCat::Base], 2u);
    EXPECT_EQ(d[CpiCat::ReuseSalvaged], 8u);
    EXPECT_EQ(d[CpiCat::Backpressure], 0u);
    EXPECT_EQ(d.total(), 10u);

    EXPECT_DOUBLE_EQ(a.fraction(CpiCat::Base), 0.75);
    EXPECT_DOUBLE_EQ(a.cpiContribution(CpiCat::Base, 10, 3), 1.0);
    EXPECT_THROW(a - b, SimPanic); // would underflow

    CpiStack empty;
    EXPECT_DOUBLE_EQ(empty.fraction(CpiCat::Base), 0.0);
    EXPECT_DOUBLE_EQ(empty.cpiContribution(CpiCat::Base, 0, 3), 0.0);
}

TEST(Accounting, FunnelStageKeysAndDifference)
{
    ReuseFunnel f;
    f.squashed = 10;
    f.logged = 6;
    f.covered = 5;
    f.tested = 4;
    f.rgidPass = 2;
    f.hazardPass = 2;
    f.reused = 2;
    EXPECT_TRUE(f.monotonic());
    EXPECT_STREQ(ReuseFunnel::stageKey(0), "squashed");
    EXPECT_STREQ(ReuseFunnel::stageKey(6), "reused");
    EXPECT_EQ(f.stage(0), 10u);
    EXPECT_EQ(f.stage(6), 2u);

    ReuseFunnel g = f;
    g.squashed = 25;
    EXPECT_EQ((g - f).squashed, 15u);
    EXPECT_EQ((g - f).reused, 0u);

    f.covered = 7; // exceeds logged
    EXPECT_FALSE(f.monotonic());
}
