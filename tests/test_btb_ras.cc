#include <gtest/gtest.h>

#include "bpu/btb.hh"
#include "bpu/ras.hh"

using namespace mssr;

TEST(Btb, MissThenHit)
{
    Btb btb(64, 4);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.update(0x1000, 0x2000);
    ASSERT_TRUE(btb.lookup(0x1000).has_value());
    EXPECT_EQ(*btb.lookup(0x1000), 0x2000u);
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb btb(64, 4);
    btb.update(0x1000, 0x2000);
    btb.update(0x1000, 0x3000);
    EXPECT_EQ(*btb.lookup(0x1000), 0x3000u);
}

TEST(Btb, LruWithinSet)
{
    Btb btb(8, 2); // 4 sets x 2 ways
    // Three PCs mapping to the same set (stride = sets * 4 bytes).
    const Addr a = 0x1000, b = a + 4 * 4, c = a + 8 * 4;
    btb.update(a, 1);
    btb.update(b, 2);
    btb.lookup(a); // lookups do not refresh LRU (updates do)
    btb.update(c, 3); // evicts the least recently *updated*: a
    EXPECT_FALSE(btb.lookup(a).has_value());
    EXPECT_TRUE(btb.lookup(b).has_value());
    EXPECT_TRUE(btb.lookup(c).has_value());
}

TEST(Ras, PushPopOrder)
{
    Ras ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, SnapshotRepairsSingleDivergence)
{
    Ras ras(8);
    ras.push(0x100);
    const Ras::Snapshot snap = ras.snapshot();
    // Wrong path: pop the entry and push garbage.
    ras.pop();
    ras.push(0xdead);
    ras.restore(snap);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, WrapsAround)
{
    Ras ras(4);
    for (Addr i = 1; i <= 6; ++i)
        ras.push(i * 0x10);
    // Capacity 4: only the last four survive.
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
}
