/**
 * Unit tests of the ReuseUnit state machine: stream capture with
 * register reservation, reconvergence detection, lockstep reuse tests,
 * divergence handling, timeout, and free-list pressure reclamation --
 * all driven with hand-built dynamic instructions.
 */

#include <gtest/gtest.h>

#include "reuse/reuse_unit.hh"

using namespace mssr;

namespace
{

class ReuseUnitTest : public ::testing::Test
{
  protected:
    ReuseUnitTest() : freeList(64, 32) {}

    void
    build(unsigned streams = 2, unsigned log_entries = 8)
    {
        cfg.numStreams = streams;
        cfg.squashLogEntriesPerStream = log_entries;
        cfg.wpbEntriesPerStream = 4;
        cfg.restrictVpn = false;
        unit = std::make_unique<ReuseUnit>(cfg, freeList);
    }

    /** Builds an executed squashed ALU instruction owning a preg. */
    DynInstPtr
    squashedAlu(SeqNum seq, Addr pc, ArchReg rd, ArchReg rs1,
                Rgid src_rgid, Rgid dst_rgid)
    {
        auto inst = std::make_shared<DynInst>();
        inst->seq = seq;
        inst->pc = pc;
        inst->si = isa::Inst{isa::Op::ADDI, rd, rs1, 0, 1};
        inst->dst = freeList.alloc();
        inst->srcRgid[0] = src_rgid;
        inst->dstRgid = dst_rgid;
        inst->executed = true;
        return inst;
    }

    /** The same instruction arriving on the corrected path. */
    DynInstPtr
    freshCopy(const DynInstPtr &other)
    {
        auto inst = std::make_shared<DynInst>();
        inst->seq = other->seq + 1000;
        inst->pc = other->pc;
        inst->si = other->si;
        return inst;
    }

    PredBlock
    blockAt(Addr start, unsigned insts)
    {
        PredBlock b;
        b.startPC = start;
        b.endPC = start + (insts - 1) * InstBytes;
        return b;
    }

    ReuseConfig cfg;
    FreeList freeList;
    std::unique_ptr<ReuseUnit> unit;
};

} // namespace

TEST_F(ReuseUnitTest, CaptureReservesExecutedDestinations)
{
    build();
    auto executed = squashedAlu(11, 0x2000, 5, 6, 1, 2);
    auto unexecuted = squashedAlu(12, 0x2004, 7, 5, 2, 3);
    unexecuted->executed = false;
    const PhysReg p1 = executed->dst, p2 = unexecuted->dst;
    unit->onBranchSquash(10, {executed, unexecuted});
    // Policy (1): executed kept, unexecuted released.
    EXPECT_EQ(freeList.state(p1), PregState::Reserved);
    EXPECT_EQ(freeList.state(p2), PregState::Free);
    EXPECT_TRUE(unit->wpb().stream(0).valid);
    EXPECT_EQ(unit->squashLog().stream(0).numEntries, 2u);
}

TEST_F(ReuseUnitTest, SuccessfulReuseAdoptsRegister)
{
    build();
    auto squashed = squashedAlu(11, 0x2000, 5, 6, /*src*/ 1, /*dst*/ 2);
    const PhysReg preg = squashed->dst;
    unit->onBranchSquash(10, {squashed});
    unit->onBlockFormed(blockAt(0x2000, 1));

    auto incoming = freshCopy(squashed);
    const Rgid cur[2] = {1, 0}; // matches the squash-time source RGID
    const ReuseAdvice advice = unit->processRename(incoming, cur);
    EXPECT_TRUE(advice.reuse);
    EXPECT_EQ(advice.destPreg, preg);
    EXPECT_EQ(advice.dstRgid, 2u);
    EXPECT_EQ(freeList.state(preg), PregState::InFlight);
}

TEST_F(ReuseUnitTest, RgidMismatchReleasesReservation)
{
    build();
    auto squashed = squashedAlu(11, 0x2000, 5, 6, 1, 2);
    const PhysReg preg = squashed->dst;
    unit->onBranchSquash(10, {squashed});
    unit->onBlockFormed(blockAt(0x2000, 1));

    auto incoming = freshCopy(squashed);
    const Rgid cur[2] = {9, 0}; // source was re-renamed since
    const ReuseAdvice advice = unit->processRename(incoming, cur);
    EXPECT_FALSE(advice.reuse);
    // Policy (3): failed test frees the register.
    EXPECT_EQ(freeList.state(preg), PregState::Free);
}

TEST_F(ReuseUnitTest, DivergenceInvalidatesStream)
{
    build();
    auto a = squashedAlu(11, 0x2000, 5, 6, 1, 2);
    auto b = squashedAlu(12, 0x2004, 7, 5, 2, 1);
    const PhysReg pb = b->dst;
    unit->onBranchSquash(10, {a, b});
    unit->onBlockFormed(blockAt(0x2000, 2));

    auto first = freshCopy(a);
    const Rgid cur[2] = {1, 0};
    EXPECT_TRUE(unit->processRename(first, cur).reuse);

    // Next instruction has a different PC: policy (4).
    auto divergent = std::make_shared<DynInst>();
    divergent->pc = 0x3000;
    divergent->si = isa::Inst{isa::Op::NOP, 0, 0, 0, 0};
    const Rgid none[2] = {0, 0};
    EXPECT_FALSE(unit->processRename(divergent, none).reuse);
    EXPECT_FALSE(unit->wpb().stream(0).valid);
    EXPECT_EQ(freeList.state(pb), PregState::Free);
}

TEST_F(ReuseUnitTest, StoresAndControlAreNeverReused)
{
    build();
    auto store = std::make_shared<DynInst>();
    store->seq = 11;
    store->pc = 0x2000;
    store->si = isa::Inst{isa::Op::SD, 0, 6, 7, 0};
    store->executed = true;
    unit->onBranchSquash(10, {store});
    unit->onBlockFormed(blockAt(0x2000, 1));
    auto incoming = freshCopy(store);
    const Rgid cur[2] = {0, 0};
    EXPECT_FALSE(unit->processRename(incoming, cur).reuse);
}

TEST_F(ReuseUnitTest, TimeoutReleasesStream)
{
    build();
    cfg.reconvTimeoutInsts = 4;
    unit = std::make_unique<ReuseUnit>(cfg, freeList);
    auto squashed = squashedAlu(11, 0x2000, 5, 6, 1, 2);
    const PhysReg preg = squashed->dst;
    unit->onBranchSquash(10, {squashed});
    // No reconvergence: renamed instructions age the stream out.
    auto unrelated = std::make_shared<DynInst>();
    unrelated->pc = 0x9000;
    unrelated->si = isa::Inst{isa::Op::NOP, 0, 0, 0, 0};
    const Rgid cur[2] = {0, 0};
    for (int i = 0; i < 6; ++i)
        unit->processRename(unrelated, cur);
    EXPECT_FALSE(unit->wpb().stream(0).valid);
    EXPECT_EQ(freeList.state(preg), PregState::Free);
}

TEST_F(ReuseUnitTest, RoundRobinOverwriteReleasesVictim)
{
    build(/*streams*/ 1);
    auto first = squashedAlu(11, 0x2000, 5, 6, 1, 2);
    const PhysReg p1 = first->dst;
    unit->onBranchSquash(10, {first});
    auto second = squashedAlu(21, 0x4000, 5, 6, 3, 4);
    unit->onBranchSquash(20, {second});
    // The single stream was recycled: first's register is free again.
    EXPECT_EQ(freeList.state(p1), PregState::Free);
    EXPECT_EQ(freeList.state(second->dst), PregState::Reserved);
}

TEST_F(ReuseUnitTest, PressureReclaimFreesLeastRecentStream)
{
    build(/*streams*/ 2);
    auto a = squashedAlu(11, 0x2000, 5, 6, 1, 2);
    auto b = squashedAlu(21, 0x4000, 5, 6, 3, 4);
    unit->onBranchSquash(10, {a});
    unit->onBranchSquash(20, {b});
    EXPECT_TRUE(unit->reclaimLeastRecentStream());
    EXPECT_EQ(freeList.state(a->dst), PregState::Free);    // older stream
    EXPECT_EQ(freeList.state(b->dst), PregState::Reserved); // kept
}

TEST_F(ReuseUnitTest, VerificationRequestedForReusedLoads)
{
    build();
    auto load = std::make_shared<DynInst>();
    load->seq = 11;
    load->pc = 0x2000;
    load->si = isa::Inst{isa::Op::LD, 5, 6, 0, 8};
    load->dst = freeList.alloc();
    load->srcRgid[0] = 1;
    load->dstRgid = 2;
    load->executed = true;
    load->memAddr = 0x8000;
    unit->onBranchSquash(10, {load});
    unit->onBlockFormed(blockAt(0x2000, 1));
    auto incoming = freshCopy(load);
    const Rgid cur[2] = {1, 0};
    const ReuseAdvice advice = unit->processRename(incoming, cur);
    EXPECT_TRUE(advice.reuse);
    EXPECT_TRUE(advice.needVerify); // re-execute & compare (sec 3.8.3)
    EXPECT_EQ(advice.memAddr, 0x8000u);
    EXPECT_EQ(advice.memSize, 8u);
}

TEST_F(ReuseUnitTest, BloomHitBlocksLoadReuse)
{
    build();
    cfg.useBloomFilter = true;
    unit = std::make_unique<ReuseUnit>(cfg, freeList);
    auto load = std::make_shared<DynInst>();
    load->seq = 11;
    load->pc = 0x2000;
    load->si = isa::Inst{isa::Op::LD, 5, 6, 0, 8};
    load->dst = freeList.alloc();
    load->srcRgid[0] = 1;
    load->dstRgid = 2;
    load->executed = true;
    load->memAddr = 0x8000;
    unit->onBranchSquash(10, {load});
    // A store to the load's address executes while the log is occupied.
    unit->onStoreExecuted(0x8000, 8);
    unit->onBlockFormed(blockAt(0x2000, 1));
    auto incoming = freshCopy(load);
    const Rgid cur[2] = {1, 0};
    const ReuseAdvice advice = unit->processRename(incoming, cur);
    EXPECT_FALSE(advice.reuse); // must re-execute
}

TEST_F(ReuseUnitTest, VerifyFailSquashInvalidatesEverything)
{
    build(2);
    auto a = squashedAlu(11, 0x2000, 5, 6, 1, 2);
    unit->onBranchSquash(10, {a});
    auto doomed = squashedAlu(31, 0x5000, 7, 6, 1, 2);
    const PhysReg pd = doomed->dst;
    unit->onOtherSquash({doomed}, /*invalidate_all*/ true);
    EXPECT_FALSE(unit->wpb().anyValid());
    EXPECT_EQ(freeList.state(pd), PregState::Free);
    EXPECT_EQ(freeList.state(a->dst), PregState::Free);
}

TEST_F(ReuseUnitTest, RgidCapacityWindowBlocksStaleReuse)
{
    // A 4-bit RGID tag distinguishes 14 generations. Age the squashed
    // mapping past the window before the reuse test: a hardware tag
    // would have wrapped, so the reuse must be rejected.
    cfg.rgidBits = 4;
    build();
    unit = std::make_unique<ReuseUnit>(cfg, freeList);
    // Allocate through the unit so its allocator tracks generations.
    const Rgid srcGen = unit->allocDstRgid(6);
    const Rgid dstGen = unit->allocDstRgid(5);
    auto squashed = squashedAlu(11, 0x2000, 5, 6, srcGen, dstGen);
    const PhysReg preg = squashed->dst;
    unit->onBranchSquash(10, {squashed});
    // Advance the destination register 20 generations.
    for (int i = 0; i < 20; ++i)
        unit->allocDstRgid(5);
    unit->onBlockFormed(blockAt(0x2000, 1));
    auto incoming = freshCopy(squashed);
    const Rgid cur[2] = {srcGen, 0};
    const ReuseAdvice advice = unit->processRename(incoming, cur);
    EXPECT_FALSE(advice.reuse);
    EXPECT_EQ(freeList.state(preg), PregState::Free); // released
}

TEST_F(ReuseUnitTest, ChainedSessionsAcrossStreams)
{
    // The corrected path reuses from the most recent stream, exhausts
    // it, and chains to an older stream covering the continuation --
    // the multi-stream behaviour of Figure 1.
    build(/*streams*/ 2, /*log*/ 8);
    // Older stream covers [0x2000, 0x2004].
    auto a0 = squashedAlu(11, 0x2000, 5, 6, 1, 2);
    auto a1 = squashedAlu(12, 0x2004, 7, 5, 2, 1);
    unit->onBranchSquash(10, {a0, a1});
    // Newer stream covers only [0x2000].
    auto b0 = squashedAlu(21, 0x2000, 5, 6, 1, 3);
    unit->onBranchSquash(20, {b0});

    // Detection picks the newer stream first...
    unit->onBlockFormed(blockAt(0x2000, 1));
    // ...whose coverage is exhausted immediately, so the next block
    // can chain onto the older stream.
    unit->onBlockFormed(blockAt(0x2004, 1));

    auto i0 = freshCopy(b0);
    const Rgid cur0[2] = {1, 0};
    const ReuseAdvice adv0 = unit->processRename(i0, cur0);
    EXPECT_TRUE(adv0.reuse);
    EXPECT_EQ(adv0.dstRgid, 3u); // from the newer stream

    auto i1 = freshCopy(a1);
    const Rgid cur1[2] = {2, 0};
    const ReuseAdvice adv1 = unit->processRename(i1, cur1);
    EXPECT_TRUE(adv1.reuse);
    EXPECT_EQ(adv1.dstRgid, 1u); // from the older stream
}
