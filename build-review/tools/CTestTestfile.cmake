# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(mssr_run_rejects_bad_streams "/root/repo/build-review/tools/mssr_run" "--streams" "4x" "--iters" "50" "nested-mispred")
set_tests_properties(mssr_run_rejects_bad_streams PROPERTIES  PASS_REGULAR_EXPRESSION "invalid value '4x' for --streams" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mssr_run_rejects_zero_streams "/root/repo/build-review/tools/mssr_run" "--streams" "0" "--iters" "50" "nested-mispred")
set_tests_properties(mssr_run_rejects_zero_streams PROPERTIES  PASS_REGULAR_EXPRESSION "invalid value '0' for --streams" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mssr_run_rejects_bad_max_insts "/root/repo/build-review/tools/mssr_run" "--max-insts" "10q" "--iters" "50" "nested-mispred")
set_tests_properties(mssr_run_rejects_bad_max_insts PROPERTIES  PASS_REGULAR_EXPRESSION "invalid value '10q' for --max-insts" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(mssr_run_trace_out "/root/repo/build-review/tools/mssr_run" "--trace" "--trace-out" "mssr_run_trace.json" "--interval" "200" "--iters" "100" "--scale" "6" "nested-mispred")
set_tests_properties(mssr_run_trace_out PROPERTIES  PASS_REGULAR_EXPRESSION "trace: wrote [1-9][0-9]* events" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
