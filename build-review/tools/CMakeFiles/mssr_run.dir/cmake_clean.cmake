file(REMOVE_RECURSE
  "CMakeFiles/mssr_run.dir/mssr_run.cc.o"
  "CMakeFiles/mssr_run.dir/mssr_run.cc.o.d"
  "mssr_run"
  "mssr_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mssr_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
