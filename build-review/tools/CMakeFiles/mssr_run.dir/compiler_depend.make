# Empty compiler generated dependencies file for mssr_run.
# This may be replaced when dependencies are built.
