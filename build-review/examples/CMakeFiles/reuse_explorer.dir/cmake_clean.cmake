file(REMOVE_RECURSE
  "CMakeFiles/reuse_explorer.dir/reuse_explorer.cpp.o"
  "CMakeFiles/reuse_explorer.dir/reuse_explorer.cpp.o.d"
  "reuse_explorer"
  "reuse_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
