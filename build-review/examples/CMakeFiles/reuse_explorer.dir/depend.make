# Empty dependencies file for reuse_explorer.
# This may be replaced when dependencies are built.
