file(REMOVE_RECURSE
  "CMakeFiles/nested_branches.dir/nested_branches.cpp.o"
  "CMakeFiles/nested_branches.dir/nested_branches.cpp.o.d"
  "nested_branches"
  "nested_branches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_branches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
