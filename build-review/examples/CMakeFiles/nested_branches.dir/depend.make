# Empty dependencies file for nested_branches.
# This may be replaced when dependencies are built.
