# Empty compiler generated dependencies file for fig10_ipc_multistream.
# This may be replaced when dependencies are built.
