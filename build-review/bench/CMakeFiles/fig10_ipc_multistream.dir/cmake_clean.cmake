file(REMOVE_RECURSE
  "CMakeFiles/fig10_ipc_multistream.dir/fig10_ipc_multistream.cc.o"
  "CMakeFiles/fig10_ipc_multistream.dir/fig10_ipc_multistream.cc.o.d"
  "fig10_ipc_multistream"
  "fig10_ipc_multistream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ipc_multistream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
