# Empty dependencies file for table4_complexity.
# This may be replaced when dependencies are built.
