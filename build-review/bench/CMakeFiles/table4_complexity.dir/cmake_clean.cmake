file(REMOVE_RECURSE
  "CMakeFiles/table4_complexity.dir/table4_complexity.cc.o"
  "CMakeFiles/table4_complexity.dir/table4_complexity.cc.o.d"
  "table4_complexity"
  "table4_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
