file(REMOVE_RECURSE
  "CMakeFiles/mssr_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/mssr_bench_common.dir/bench_common.cc.o.d"
  "libmssr_bench_common.a"
  "libmssr_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mssr_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
