# Empty dependencies file for mssr_bench_common.
# This may be replaced when dependencies are built.
