file(REMOVE_RECURSE
  "libmssr_bench_common.a"
)
