# Empty dependencies file for fig4_reconv_breakdown.
# This may be replaced when dependencies are built.
