file(REMOVE_RECURSE
  "CMakeFiles/fig4_reconv_breakdown.dir/fig4_reconv_breakdown.cc.o"
  "CMakeFiles/fig4_reconv_breakdown.dir/fig4_reconv_breakdown.cc.o.d"
  "fig4_reconv_breakdown"
  "fig4_reconv_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_reconv_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
