# Empty dependencies file for fig12_ri_vs_rgid.
# This may be replaced when dependencies are built.
