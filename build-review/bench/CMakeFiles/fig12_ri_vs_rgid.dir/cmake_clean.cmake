file(REMOVE_RECURSE
  "CMakeFiles/fig12_ri_vs_rgid.dir/fig12_ri_vs_rgid.cc.o"
  "CMakeFiles/fig12_ri_vs_rgid.dir/fig12_ri_vs_rgid.cc.o.d"
  "fig12_ri_vs_rgid"
  "fig12_ri_vs_rgid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ri_vs_rgid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
