# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig12_ri_vs_rgid.
