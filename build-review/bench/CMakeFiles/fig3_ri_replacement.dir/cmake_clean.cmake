file(REMOVE_RECURSE
  "CMakeFiles/fig3_ri_replacement.dir/fig3_ri_replacement.cc.o"
  "CMakeFiles/fig3_ri_replacement.dir/fig3_ri_replacement.cc.o.d"
  "fig3_ri_replacement"
  "fig3_ri_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_ri_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
