# Empty dependencies file for fig3_ri_replacement.
# This may be replaced when dependencies are built.
