# Empty compiler generated dependencies file for fig11_stream_distance.
# This may be replaced when dependencies are built.
