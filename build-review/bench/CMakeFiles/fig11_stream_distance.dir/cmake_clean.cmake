file(REMOVE_RECURSE
  "CMakeFiles/fig11_stream_distance.dir/fig11_stream_distance.cc.o"
  "CMakeFiles/fig11_stream_distance.dir/fig11_stream_distance.cc.o.d"
  "fig11_stream_distance"
  "fig11_stream_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_stream_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
