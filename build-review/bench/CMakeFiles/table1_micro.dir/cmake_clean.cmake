file(REMOVE_RECURSE
  "CMakeFiles/table1_micro.dir/table1_micro.cc.o"
  "CMakeFiles/table1_micro.dir/table1_micro.cc.o.d"
  "table1_micro"
  "table1_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
