# Empty compiler generated dependencies file for table1_micro.
# This may be replaced when dependencies are built.
