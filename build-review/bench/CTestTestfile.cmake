# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke "/root/repo/build-review/bench/bench_smoke")
set_tests_properties(bench_smoke PROPERTIES  ENVIRONMENT "MSSR_SCALE=6;MSSR_ITERS=200;MSSR_JOBS=2" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;28;add_test;/root/repo/bench/CMakeLists.txt;0;")
