file(REMOVE_RECURSE
  "libmssr.a"
)
