# Empty dependencies file for mssr.
# This may be replaced when dependencies are built.
