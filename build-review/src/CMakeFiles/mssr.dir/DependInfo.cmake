
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/complexity_model.cc" "src/CMakeFiles/mssr.dir/analysis/complexity_model.cc.o" "gcc" "src/CMakeFiles/mssr.dir/analysis/complexity_model.cc.o.d"
  "/root/repo/src/analysis/report.cc" "src/CMakeFiles/mssr.dir/analysis/report.cc.o" "gcc" "src/CMakeFiles/mssr.dir/analysis/report.cc.o.d"
  "/root/repo/src/analysis/storage_model.cc" "src/CMakeFiles/mssr.dir/analysis/storage_model.cc.o" "gcc" "src/CMakeFiles/mssr.dir/analysis/storage_model.cc.o.d"
  "/root/repo/src/bpu/bimodal.cc" "src/CMakeFiles/mssr.dir/bpu/bimodal.cc.o" "gcc" "src/CMakeFiles/mssr.dir/bpu/bimodal.cc.o.d"
  "/root/repo/src/bpu/btb.cc" "src/CMakeFiles/mssr.dir/bpu/btb.cc.o" "gcc" "src/CMakeFiles/mssr.dir/bpu/btb.cc.o.d"
  "/root/repo/src/bpu/gshare.cc" "src/CMakeFiles/mssr.dir/bpu/gshare.cc.o" "gcc" "src/CMakeFiles/mssr.dir/bpu/gshare.cc.o.d"
  "/root/repo/src/bpu/loop_predictor.cc" "src/CMakeFiles/mssr.dir/bpu/loop_predictor.cc.o" "gcc" "src/CMakeFiles/mssr.dir/bpu/loop_predictor.cc.o.d"
  "/root/repo/src/bpu/ras.cc" "src/CMakeFiles/mssr.dir/bpu/ras.cc.o" "gcc" "src/CMakeFiles/mssr.dir/bpu/ras.cc.o.d"
  "/root/repo/src/bpu/statistical_corrector.cc" "src/CMakeFiles/mssr.dir/bpu/statistical_corrector.cc.o" "gcc" "src/CMakeFiles/mssr.dir/bpu/statistical_corrector.cc.o.d"
  "/root/repo/src/bpu/tage.cc" "src/CMakeFiles/mssr.dir/bpu/tage.cc.o" "gcc" "src/CMakeFiles/mssr.dir/bpu/tage.cc.o.d"
  "/root/repo/src/bpu/tage_sc_l.cc" "src/CMakeFiles/mssr.dir/bpu/tage_sc_l.cc.o" "gcc" "src/CMakeFiles/mssr.dir/bpu/tage_sc_l.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/mssr.dir/common/config.cc.o" "gcc" "src/CMakeFiles/mssr.dir/common/config.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/mssr.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/mssr.dir/common/stats.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/mssr.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/mssr.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/common/trace.cc" "src/CMakeFiles/mssr.dir/common/trace.cc.o" "gcc" "src/CMakeFiles/mssr.dir/common/trace.cc.o.d"
  "/root/repo/src/core/dyn_inst.cc" "src/CMakeFiles/mssr.dir/core/dyn_inst.cc.o" "gcc" "src/CMakeFiles/mssr.dir/core/dyn_inst.cc.o.d"
  "/root/repo/src/core/free_list.cc" "src/CMakeFiles/mssr.dir/core/free_list.cc.o" "gcc" "src/CMakeFiles/mssr.dir/core/free_list.cc.o.d"
  "/root/repo/src/core/issue_queue.cc" "src/CMakeFiles/mssr.dir/core/issue_queue.cc.o" "gcc" "src/CMakeFiles/mssr.dir/core/issue_queue.cc.o.d"
  "/root/repo/src/core/lsq.cc" "src/CMakeFiles/mssr.dir/core/lsq.cc.o" "gcc" "src/CMakeFiles/mssr.dir/core/lsq.cc.o.d"
  "/root/repo/src/core/o3cpu.cc" "src/CMakeFiles/mssr.dir/core/o3cpu.cc.o" "gcc" "src/CMakeFiles/mssr.dir/core/o3cpu.cc.o.d"
  "/root/repo/src/core/regfile.cc" "src/CMakeFiles/mssr.dir/core/regfile.cc.o" "gcc" "src/CMakeFiles/mssr.dir/core/regfile.cc.o.d"
  "/root/repo/src/core/rename_map.cc" "src/CMakeFiles/mssr.dir/core/rename_map.cc.o" "gcc" "src/CMakeFiles/mssr.dir/core/rename_map.cc.o.d"
  "/root/repo/src/core/rob.cc" "src/CMakeFiles/mssr.dir/core/rob.cc.o" "gcc" "src/CMakeFiles/mssr.dir/core/rob.cc.o.d"
  "/root/repo/src/driver/batch_runner.cc" "src/CMakeFiles/mssr.dir/driver/batch_runner.cc.o" "gcc" "src/CMakeFiles/mssr.dir/driver/batch_runner.cc.o.d"
  "/root/repo/src/driver/sim_runner.cc" "src/CMakeFiles/mssr.dir/driver/sim_runner.cc.o" "gcc" "src/CMakeFiles/mssr.dir/driver/sim_runner.cc.o.d"
  "/root/repo/src/frontend/bpu_pipeline.cc" "src/CMakeFiles/mssr.dir/frontend/bpu_pipeline.cc.o" "gcc" "src/CMakeFiles/mssr.dir/frontend/bpu_pipeline.cc.o.d"
  "/root/repo/src/frontend/ftq.cc" "src/CMakeFiles/mssr.dir/frontend/ftq.cc.o" "gcc" "src/CMakeFiles/mssr.dir/frontend/ftq.cc.o.d"
  "/root/repo/src/frontend/pred_block.cc" "src/CMakeFiles/mssr.dir/frontend/pred_block.cc.o" "gcc" "src/CMakeFiles/mssr.dir/frontend/pred_block.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/mssr.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/mssr.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/inst.cc" "src/CMakeFiles/mssr.dir/isa/inst.cc.o" "gcc" "src/CMakeFiles/mssr.dir/isa/inst.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/mssr.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/mssr.dir/isa/program.cc.o.d"
  "/root/repo/src/memsys/cache.cc" "src/CMakeFiles/mssr.dir/memsys/cache.cc.o" "gcc" "src/CMakeFiles/mssr.dir/memsys/cache.cc.o.d"
  "/root/repo/src/memsys/hierarchy.cc" "src/CMakeFiles/mssr.dir/memsys/hierarchy.cc.o" "gcc" "src/CMakeFiles/mssr.dir/memsys/hierarchy.cc.o.d"
  "/root/repo/src/reuse/bloom.cc" "src/CMakeFiles/mssr.dir/reuse/bloom.cc.o" "gcc" "src/CMakeFiles/mssr.dir/reuse/bloom.cc.o.d"
  "/root/repo/src/reuse/reconv_detector.cc" "src/CMakeFiles/mssr.dir/reuse/reconv_detector.cc.o" "gcc" "src/CMakeFiles/mssr.dir/reuse/reconv_detector.cc.o.d"
  "/root/repo/src/reuse/reuse_unit.cc" "src/CMakeFiles/mssr.dir/reuse/reuse_unit.cc.o" "gcc" "src/CMakeFiles/mssr.dir/reuse/reuse_unit.cc.o.d"
  "/root/repo/src/reuse/rgid.cc" "src/CMakeFiles/mssr.dir/reuse/rgid.cc.o" "gcc" "src/CMakeFiles/mssr.dir/reuse/rgid.cc.o.d"
  "/root/repo/src/reuse/squash_log.cc" "src/CMakeFiles/mssr.dir/reuse/squash_log.cc.o" "gcc" "src/CMakeFiles/mssr.dir/reuse/squash_log.cc.o.d"
  "/root/repo/src/reuse/wpb.cc" "src/CMakeFiles/mssr.dir/reuse/wpb.cc.o" "gcc" "src/CMakeFiles/mssr.dir/reuse/wpb.cc.o.d"
  "/root/repo/src/ri/integration_table.cc" "src/CMakeFiles/mssr.dir/ri/integration_table.cc.o" "gcc" "src/CMakeFiles/mssr.dir/ri/integration_table.cc.o.d"
  "/root/repo/src/sim/func_emu.cc" "src/CMakeFiles/mssr.dir/sim/func_emu.cc.o" "gcc" "src/CMakeFiles/mssr.dir/sim/func_emu.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/CMakeFiles/mssr.dir/sim/memory.cc.o" "gcc" "src/CMakeFiles/mssr.dir/sim/memory.cc.o.d"
  "/root/repo/src/workloads/builder.cc" "src/CMakeFiles/mssr.dir/workloads/builder.cc.o" "gcc" "src/CMakeFiles/mssr.dir/workloads/builder.cc.o.d"
  "/root/repo/src/workloads/gap_kernels.cc" "src/CMakeFiles/mssr.dir/workloads/gap_kernels.cc.o" "gcc" "src/CMakeFiles/mssr.dir/workloads/gap_kernels.cc.o.d"
  "/root/repo/src/workloads/gap_reference.cc" "src/CMakeFiles/mssr.dir/workloads/gap_reference.cc.o" "gcc" "src/CMakeFiles/mssr.dir/workloads/gap_reference.cc.o.d"
  "/root/repo/src/workloads/graph.cc" "src/CMakeFiles/mssr.dir/workloads/graph.cc.o" "gcc" "src/CMakeFiles/mssr.dir/workloads/graph.cc.o.d"
  "/root/repo/src/workloads/micro.cc" "src/CMakeFiles/mssr.dir/workloads/micro.cc.o" "gcc" "src/CMakeFiles/mssr.dir/workloads/micro.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/mssr.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/mssr.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/speclike.cc" "src/CMakeFiles/mssr.dir/workloads/speclike.cc.o" "gcc" "src/CMakeFiles/mssr.dir/workloads/speclike.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
