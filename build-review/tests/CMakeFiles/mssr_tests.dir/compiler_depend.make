# Empty compiler generated dependencies file for mssr_tests.
# This may be replaced when dependencies are built.
