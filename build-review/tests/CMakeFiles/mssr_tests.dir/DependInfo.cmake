
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_assembler.cc" "tests/CMakeFiles/mssr_tests.dir/test_assembler.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_assembler.cc.o.d"
  "/root/repo/tests/test_batch_runner.cc" "tests/CMakeFiles/mssr_tests.dir/test_batch_runner.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_batch_runner.cc.o.d"
  "/root/repo/tests/test_bitops.cc" "tests/CMakeFiles/mssr_tests.dir/test_bitops.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_bitops.cc.o.d"
  "/root/repo/tests/test_bloom.cc" "tests/CMakeFiles/mssr_tests.dir/test_bloom.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_bloom.cc.o.d"
  "/root/repo/tests/test_bpu_pipeline.cc" "tests/CMakeFiles/mssr_tests.dir/test_bpu_pipeline.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_bpu_pipeline.cc.o.d"
  "/root/repo/tests/test_btb_ras.cc" "tests/CMakeFiles/mssr_tests.dir/test_btb_ras.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_btb_ras.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/mssr_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_complexity_model.cc" "tests/CMakeFiles/mssr_tests.dir/test_complexity_model.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_complexity_model.cc.o.d"
  "/root/repo/tests/test_cosim.cc" "tests/CMakeFiles/mssr_tests.dir/test_cosim.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_cosim.cc.o.d"
  "/root/repo/tests/test_cosim_random.cc" "tests/CMakeFiles/mssr_tests.dir/test_cosim_random.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_cosim_random.cc.o.d"
  "/root/repo/tests/test_cosim_sweeps.cc" "tests/CMakeFiles/mssr_tests.dir/test_cosim_sweeps.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_cosim_sweeps.cc.o.d"
  "/root/repo/tests/test_determinism.cc" "tests/CMakeFiles/mssr_tests.dir/test_determinism.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_determinism.cc.o.d"
  "/root/repo/tests/test_driver.cc" "tests/CMakeFiles/mssr_tests.dir/test_driver.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_driver.cc.o.d"
  "/root/repo/tests/test_free_list.cc" "tests/CMakeFiles/mssr_tests.dir/test_free_list.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_free_list.cc.o.d"
  "/root/repo/tests/test_ftq.cc" "tests/CMakeFiles/mssr_tests.dir/test_ftq.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_ftq.cc.o.d"
  "/root/repo/tests/test_func_emu.cc" "tests/CMakeFiles/mssr_tests.dir/test_func_emu.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_func_emu.cc.o.d"
  "/root/repo/tests/test_gap_kernels.cc" "tests/CMakeFiles/mssr_tests.dir/test_gap_kernels.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_gap_kernels.cc.o.d"
  "/root/repo/tests/test_graph.cc" "tests/CMakeFiles/mssr_tests.dir/test_graph.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_graph.cc.o.d"
  "/root/repo/tests/test_integration_table.cc" "tests/CMakeFiles/mssr_tests.dir/test_integration_table.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_integration_table.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/mssr_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_issue_queue.cc" "tests/CMakeFiles/mssr_tests.dir/test_issue_queue.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_issue_queue.cc.o.d"
  "/root/repo/tests/test_lsq.cc" "tests/CMakeFiles/mssr_tests.dir/test_lsq.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_lsq.cc.o.d"
  "/root/repo/tests/test_memory.cc" "tests/CMakeFiles/mssr_tests.dir/test_memory.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_memory.cc.o.d"
  "/root/repo/tests/test_o3_basic.cc" "tests/CMakeFiles/mssr_tests.dir/test_o3_basic.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_o3_basic.cc.o.d"
  "/root/repo/tests/test_o3_reuse.cc" "tests/CMakeFiles/mssr_tests.dir/test_o3_reuse.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_o3_reuse.cc.o.d"
  "/root/repo/tests/test_predictors.cc" "tests/CMakeFiles/mssr_tests.dir/test_predictors.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_predictors.cc.o.d"
  "/root/repo/tests/test_reconv_detector.cc" "tests/CMakeFiles/mssr_tests.dir/test_reconv_detector.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_reconv_detector.cc.o.d"
  "/root/repo/tests/test_rename_map.cc" "tests/CMakeFiles/mssr_tests.dir/test_rename_map.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_rename_map.cc.o.d"
  "/root/repo/tests/test_report.cc" "tests/CMakeFiles/mssr_tests.dir/test_report.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_report.cc.o.d"
  "/root/repo/tests/test_reuse_unit.cc" "tests/CMakeFiles/mssr_tests.dir/test_reuse_unit.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_reuse_unit.cc.o.d"
  "/root/repo/tests/test_rgid.cc" "tests/CMakeFiles/mssr_tests.dir/test_rgid.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_rgid.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/mssr_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_rob.cc" "tests/CMakeFiles/mssr_tests.dir/test_rob.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_rob.cc.o.d"
  "/root/repo/tests/test_squash_arbitration.cc" "tests/CMakeFiles/mssr_tests.dir/test_squash_arbitration.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_squash_arbitration.cc.o.d"
  "/root/repo/tests/test_squash_log.cc" "tests/CMakeFiles/mssr_tests.dir/test_squash_log.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_squash_log.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/mssr_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_storage_model.cc" "tests/CMakeFiles/mssr_tests.dir/test_storage_model.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_storage_model.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/mssr_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/mssr_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_workloads.cc.o.d"
  "/root/repo/tests/test_wpb.cc" "tests/CMakeFiles/mssr_tests.dir/test_wpb.cc.o" "gcc" "tests/CMakeFiles/mssr_tests.dir/test_wpb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/mssr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
